package serve

// POST /extract/batch: the amortized serving surface for callers that hold
// many result pages at once (a crawler flush, a metasearch fan-in, a
// backfill).  One request carries N pages; the handler deduplicates them by
// content address before touching the cache, serves residents immediately,
// and fans the unique misses through the worker pool — each miss taking one
// admission slot, so a batch of N counts N against -max-inflight rather
// than sneaking past the limiter.  Results and errors are per item: one
// unknown engine or oversized page fails that item, not the batch.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"mse/internal/excache"
	"mse/internal/obs"
	"mse/internal/par"
)

// MaxBatchItems bounds the number of pages in one batch request.
const MaxBatchItems = 256

// MaxBatchBytes bounds the whole batch request body.
const MaxBatchBytes = 64 << 20

// batchItem is one page in a batch request.  Engine defaults to the
// ?engine= query parameter; Query uses the same +/space-separated form as
// the single endpoint's ?q=.
type batchItem struct {
	Engine string `json:"engine,omitempty"`
	Query  string `json:"q,omitempty"`
	HTML   string `json:"html"`
}

// batchItemResult is the wire form of one item's outcome.  Status is the
// HTTP status the same page would have received on /extract; Result is the
// byte-identical /extract response body on 200.
type batchItemResult struct {
	Engine     string          `json:"engine,omitempty"`
	Status     int             `json:"status"`
	Cached     bool            `json:"cached,omitempty"`
	OwnerShard *int            `json:"owner_shard,omitempty"`
	Error      string          `json:"error,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
}

// batchResponse is the wire form of POST /extract/batch.
type batchResponse struct {
	Results []batchItemResult `json:"results"`
}

// batchJob is one unique content address within a batch: the first item
// with a given (engine, generation, hash) extracts, every duplicate index
// shares its result.
type batchJob struct {
	key         excache.Key
	engine      string
	ent         *engineEntry
	html        string
	query       []string
	idxs        []int
	root        *obs.Span
	out         extractOutcome
	status      int
	errMsg      string
	queueWaitMs float64
}

// decodeBatch accepts either {"items":[...]} or a bare JSON array.
func decodeBatch(body []byte) ([]batchItem, error) {
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var items []batchItem
		err := json.Unmarshal(trimmed, &items)
		return items, err
	}
	var wrapped struct {
		Items []batchItem `json:"items"`
	}
	err := json.Unmarshal(body, &wrapped)
	return wrapped.Items, err
}

func (r *Registry) handleExtractBatch(w http.ResponseWriter, req *http.Request) {
	defaultEngine := req.URL.Query().Get("engine")
	if req.Method != http.MethodPost {
		r.metrics.errors.Inc()
		writeError(w, http.StatusMethodNotAllowed, defaultEngine, "POST required")
		return
	}
	body, err := io.ReadAll(io.LimitReader(req.Body, MaxBatchBytes+1))
	if err != nil {
		if req.Context().Err() != nil || errors.Is(err, io.ErrUnexpectedEOF) {
			r.metrics.canceled.Inc()
			writeError(w, statusClientClosedRequest, defaultEngine, "client disconnected during body read")
			return
		}
		r.metrics.errors.Inc()
		writeError(w, http.StatusBadRequest, defaultEngine, "reading body: "+err.Error())
		return
	}
	if len(body) > MaxBatchBytes {
		r.metrics.errors.Inc()
		writeError(w, http.StatusRequestEntityTooLarge, defaultEngine,
			fmt.Sprintf("batch exceeds %d bytes", MaxBatchBytes))
		return
	}
	items, err := decodeBatch(body)
	if err != nil {
		r.metrics.errors.Inc()
		writeError(w, http.StatusBadRequest, defaultEngine, "decoding batch: "+err.Error())
		return
	}
	if len(items) == 0 {
		r.metrics.errors.Inc()
		writeError(w, http.StatusBadRequest, defaultEngine, "empty batch")
		return
	}
	if len(items) > MaxBatchItems {
		r.metrics.errors.Inc()
		writeError(w, http.StatusBadRequest, defaultEngine,
			fmt.Sprintf("batch has %d items, limit %d", len(items), MaxBatchItems))
		return
	}
	r.metrics.batches.Inc()
	r.metrics.batchPages.Add(int64(len(items)))
	rid := RequestID(req.Context())
	start := time.Now()

	results := make([]batchItemResult, len(items))
	jevs := make([]*JournalEvent, len(items))
	itemJob := make([]*batchJob, len(items))
	byKey := map[excache.Key]*batchJob{}
	var jobs []*batchJob

	// Validation + dedupe pass: every item either fails early (unknown or
	// misrouted engine, oversized page) or joins the job for its content
	// address.  Duplicates within the batch collapse before any cache or
	// pipeline work happens.
	for i, it := range items {
		name := it.Engine
		if name == "" {
			name = defaultEngine
		}
		results[i].Engine = name
		if r.journal.Sample() {
			jevs[i] = &JournalEvent{RequestID: rid, Engine: name, Batch: true, BatchIndex: i}
		}
		if name == "" {
			r.metrics.errors.Inc()
			results[i].Status = http.StatusBadRequest
			results[i].Error = "missing engine (set item engine or ?engine=)"
			continue
		}
		if !r.Owns(name) {
			r.metrics.misrouted.Inc()
			owner := r.ring.Owner(name)
			_, total, _ := r.ShardInfo()
			results[i].Status = http.StatusMisdirectedRequest
			results[i].OwnerShard = &owner
			results[i].Error = fmt.Sprintf("engine %q is owned by shard %d/%d", name, owner, total)
			continue
		}
		ent, ok := r.get(name)
		if !ok {
			r.metrics.errors.Inc()
			results[i].Status = http.StatusNotFound
			results[i].Error = fmt.Sprintf("unknown engine %q", name)
			continue
		}
		if len(it.HTML) > MaxPageBytes {
			r.metrics.engine(name).errors.Inc()
			r.metrics.errors.Inc()
			results[i].Status = http.StatusRequestEntityTooLarge
			results[i].Error = fmt.Sprintf("page exceeds %d bytes", MaxPageBytes)
			continue
		}
		r.metrics.engine(name).requests.Inc()
		var query []string
		if it.Query != "" {
			query = strings.FieldsFunc(it.Query, func(r rune) bool { return r == '+' || r == ' ' })
		}
		key := excache.Key{Engine: name, Gen: ent.gen, Hash: excache.HashPage(it.HTML, query)}
		if j := byKey[key]; j != nil {
			j.idxs = append(j.idxs, i)
			itemJob[i] = j
			continue
		}
		j := &batchJob{key: key, engine: name, ent: ent, html: it.HTML, query: query, idxs: []int{i}}
		byKey[key] = j
		itemJob[i] = j
		jobs = append(jobs, j)
	}

	// A job gets a span tree only when some item of it will be journaled.
	for _, j := range jobs {
		for _, i := range j.idxs {
			if jevs[i] != nil {
				j.root = obs.NewSpan(obs.RootExtract)
				break
			}
		}
	}

	// Fan the unique jobs through the worker pool.  Each job acquires its
	// own admission slot — the batch holds at most workers slots at once
	// and every page is accounted, exactly as if it had arrived alone.  A
	// worker panic propagates through par's re-raise to the recoverer, and
	// the deferred release runs during the unwind, so no slot leaks.
	ctx := req.Context()
	par.ForEachIndex(len(jobs), par.Workers(0), func(n int) {
		j := jobs[n]
		em := r.metrics.engine(j.engine)
		wait, err := r.limiter.acquire(ctx)
		r.metrics.queueWait.Observe(wait)
		j.queueWaitMs = float64(wait) / float64(time.Millisecond)
		if err != nil {
			if errors.Is(err, errShed) {
				r.metrics.shed.Inc()
				j.status = http.StatusTooManyRequests
				j.errMsg = "server at capacity, retry later"
			} else {
				r.metrics.canceled.Inc()
				j.status = statusClientClosedRequest
				j.errMsg = "request canceled while queued"
			}
			return
		}
		defer r.limiter.release()
		r.metrics.extractInFlight.Add(1)
		defer r.metrics.extractInFlight.Add(-1)
		out, err := r.extractEntry(ctx, j.engine, j.ent, em, j.html, j.query, j.root)
		j.out = out
		if err != nil {
			j.status, j.errMsg = r.extractErrorStatus(ctx, err)
			return
		}
		j.status = http.StatusOK
	})

	// Assembly: fan each job's outcome back to its item indices.  Every
	// index after the first (and every index of a job that hit the cache)
	// was served without pipeline work, which the served-totals counters
	// and the per-item cached flag both reflect.
	for i := range items {
		j := itemJob[i]
		if j == nil {
			continue // early validation error, result already written
		}
		if j.status != http.StatusOK {
			results[i].Status = j.status
			results[i].Error = j.errMsg
			continue
		}
		cached := j.out.cached || i != j.idxs[0]
		if cached {
			em := r.metrics.engine(j.engine)
			em.sections.Add(int64(j.out.entry.Sections))
			em.records.Add(int64(j.out.entry.Records))
		}
		results[i].Status = http.StatusOK
		results[i].Cached = cached
		results[i].Result = json.RawMessage(j.out.entry.Body)
	}

	// Journal pass: one sub-item event per sampled index, all carrying the
	// batch request's correlation ID.
	totalMs := float64(time.Since(start)) / float64(time.Millisecond)
	for i, jev := range jevs {
		if jev == nil {
			continue
		}
		jev.Time = nowRFC3339()
		jev.Status = results[i].Status
		jev.Error = results[i].Error
		jev.PageBytes = len(items[i].HTML)
		jev.PageHash = pageHash(items[i].HTML)
		jev.TotalMs = totalMs
		if j := itemJob[i]; j != nil {
			jev.Query = j.query
			jev.QueueWaitMs = j.queueWaitMs
			if j.status == http.StatusOK {
				jev.Sections = j.out.entry.Sections
				jev.Records = j.out.entry.Records
				jev.Cached = results[i].Cached
			}
			if j.out.assessed {
				journalQuality(jev, j.out.assessment)
			}
			jev.StagesMs = stageTimings(j.root)
		}
		r.journal.Write(*jev)
	}

	writeBatchResponse(w, results)
	// Reservoir feed, after the response is out (exactly as /extract):
	// each successfully extracted unique page is a relearn sample.
	for _, j := range jobs {
		if j.status == http.StatusOK {
			r.feedRelearn(j.engine, j.html, j.query)
		}
	}
}

// writeBatchResponse assembles the batch response by hand.  Each OK item's
// Result is an already-serialized /extract body; running the whole
// response through the indenting encoder would re-tokenize every body byte
// (the dominant cost of an all-hit batch), so the per-item metadata is
// marshaled normally and the result bodies are spliced in verbatim.
func writeBatchResponse(w http.ResponseWriter, results []batchItemResult) {
	var buf bytes.Buffer
	grow := 32
	for i := range results {
		grow += len(results[i].Result) + 128
	}
	buf.Grow(grow)
	buf.WriteString(`{"results":[`)
	for i := range results {
		if i > 0 {
			buf.WriteByte(',')
		}
		body := results[i].Result
		results[i].Result = nil
		meta, _ := json.Marshal(&results[i]) // cannot fail: fixed field types
		results[i].Result = body
		if len(body) == 0 {
			buf.Write(meta)
			continue
		}
		buf.Write(meta[:len(meta)-1]) // reopen the object brace
		if len(meta) > 2 {
			buf.WriteByte(',')
		}
		buf.WriteString(`"result":`)
		buf.Write(bytes.TrimRight(body, "\n"))
		buf.WriteByte('}')
	}
	buf.WriteString("]}\n")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}
