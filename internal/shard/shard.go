// Package shard implements consistent hashing over engine names, the
// routing layer that lets N mse-serve processes split a large wrapper
// fleet: shard k of N owns every engine whose name hashes to its arc of
// the ring.  Each shard contributes a fixed number of virtual nodes, so
// ownership is balanced (within a few percent for realistic fleet sizes)
// and adding or removing one shard moves only ~1/N of the engines —
// unlike modulo hashing, which reshuffles nearly everything.
//
// The ring is deterministic: every process that builds NewRing(n) agrees
// on ownership with no coordination, so a front tier (or a client) can
// compute the owner locally and a misrouted request can be answered with
// the owner's index.
package shard

import (
	"fmt"
	"sort"

	"mse/internal/excache"
)

// VirtualNodes is the number of points each shard contributes to the ring.
// 128 keeps the expected ownership imbalance under ~10% for small N while
// the whole ring stays a few KB.
const VirtualNodes = 128

// Ring is an immutable consistent-hash ring over n shards.  Safe for
// concurrent use.
type Ring struct {
	n      int
	points []point
}

type point struct {
	hash  uint64
	shard int
}

// NewRing returns the ring for n shards (n >= 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	r := &Ring{n: n, points: make([]point, 0, n*VirtualNodes)}
	for s := 0; s < n; s++ {
		for v := 0; v < VirtualNodes; v++ {
			h := excache.HashString(fmt.Sprintf("shard-%d-vnode-%d", s, v))
			r.points = append(r.points, point{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Deterministic tie-break; collisions are cosmically rare but must
		// not make two processes disagree on ownership.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the shard count the ring was built for.
func (r *Ring) Shards() int { return r.n }

// Owner returns the shard index owning the given engine name: the shard of
// the first virtual node clockwise from the name's hash.
func (r *Ring) Owner(engine string) int {
	if r.n == 1 {
		return 0
	}
	h := excache.HashString(engine)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point to the ring's start
	}
	return r.points[i].shard
}
