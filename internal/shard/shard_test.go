package shard

import (
	"fmt"
	"testing"
)

func engineNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("engine-%03d", i)
	}
	return names
}

// TestOwnerDeterministic: two independently built rings must agree on every
// assignment — processes coordinate through the hash alone.
func TestOwnerDeterministic(t *testing.T) {
	a, b := NewRing(5), NewRing(5)
	for _, name := range engineNames(500) {
		if a.Owner(name) != b.Owner(name) {
			t.Fatalf("rings disagree on %q: %d vs %d", name, a.Owner(name), b.Owner(name))
		}
	}
}

func TestOwnerInRangeAndSingleShard(t *testing.T) {
	r := NewRing(4)
	for _, name := range engineNames(200) {
		if o := r.Owner(name); o < 0 || o >= 4 {
			t.Fatalf("owner(%q) = %d out of range", name, o)
		}
	}
	one := NewRing(1)
	for _, name := range engineNames(50) {
		if one.Owner(name) != 0 {
			t.Fatalf("single-shard ring routed %q to %d", name, one.Owner(name))
		}
	}
	if NewRing(0).Shards() != 1 {
		t.Fatal("NewRing(0) did not clamp to 1 shard")
	}
}

// TestBalance: with 128 virtual nodes per shard, a paper-scale fleet (119
// engines) over 4 shards should not leave any shard starved or hoarding.
func TestBalance(t *testing.T) {
	const shards = 4
	r := NewRing(shards)
	counts := make([]int, shards)
	names := engineNames(119)
	for _, name := range names {
		counts[r.Owner(name)]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d owns no engines: %v", s, counts)
		}
		if c > 2*len(names)/shards {
			t.Fatalf("shard %d owns %d of %d engines (counts %v) — ring badly unbalanced",
				s, c, len(names), counts)
		}
	}
	t.Logf("ownership over %d engines / %d shards: %v", len(names), shards, counts)
}

// TestStability: growing the fleet from N to N+1 shards must move only a
// minority of engines — the consistent-hashing property that makes rolling
// resharding cheap.
func TestStability(t *testing.T) {
	names := engineNames(1000)
	before, after := NewRing(4), NewRing(5)
	moved := 0
	for _, name := range names {
		ob, oa := before.Owner(name), after.Owner(name)
		if ob != oa {
			moved++
			if oa != 4 {
				// A consistent ring only moves keys *to* the new shard;
				// movement between surviving shards is the failure mode of
				// modulo hashing.
				t.Fatalf("engine %q moved %d -> %d, not to the new shard", name, ob, oa)
			}
		}
	}
	if moved == 0 {
		t.Fatal("new shard received nothing")
	}
	if frac := float64(moved) / float64(len(names)); frac > 0.40 {
		t.Fatalf("adding one shard moved %.0f%% of engines, want ~1/5", 100*frac)
	}
}
