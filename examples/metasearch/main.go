// Metasearch: the paper's headline application.  A metasearch engine
// forwards one query to several component search engines, extracts the
// search result records from each engine's result page with a
// per-engine MSE wrapper, and merges them — while the section-record
// relationship lets it treat organic results and sponsored links
// differently.
//
// Run with:
//
//	go run ./examples/metasearch
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"mse"
	"mse/internal/synth"
)

// componentEngine is one search engine participating in the metasearch,
// with its trained wrapper.
type componentEngine struct {
	engine  *synth.Engine
	wrapper *mse.Wrapper
}

// mergedResult is one record in the merged result list.
type mergedResult struct {
	Engine  string
	Section string
	Title   string
	Link    string
	// rank is the record's position within its section (lower is better);
	// the merger interleaves by rank, a common metasearch strategy.
	rank int
}

func main() {
	// Phase 1 — setup: train a wrapper for every component engine from
	// five sample pages each.  In production this happens once, offline,
	// and the wrappers are stored as JSON.
	var components []*componentEngine
	for _, id := range []int{3, 11, 17} {
		e := synth.NewEngine(2006, id, true)
		var samples []mse.SamplePage
		for q := 0; q < 5; q++ {
			p := e.Page(q)
			samples = append(samples, mse.SamplePage{HTML: p.HTML, Query: p.Query})
		}
		w, err := mse.Train(samples, nil)
		if err != nil {
			log.Fatalf("training wrapper for %s: %v", e.Name, err)
		}
		fmt.Printf("trained wrapper for %-24s (%d sections, %d families)\n",
			e.Name, w.SectionCount(), w.FamilyCount())
		components = append(components, &componentEngine{engine: e, wrapper: w})
	}

	// Phase 2 — query time: "send" the query to each engine (here: page 9
	// of each synthetic engine) and extract records from all sections.
	fmt.Printf("\nmerged results:\n")
	var merged []mergedResult
	sponsored := 0
	for _, c := range components {
		page := c.engine.Page(9)
		for _, sec := range c.wrapper.Extract(page.HTML, page.Query) {
			// The section-record relationship at work: sponsored or
			// shopping sections are kept out of the organic ranking.
			isAd := strings.Contains(sec.Heading, "Sponsored") ||
				strings.Contains(sec.Heading, "Shopping")
			for i, r := range sec.Records {
				if len(r.Lines) == 0 {
					continue
				}
				if isAd {
					sponsored++
					continue
				}
				link := ""
				if len(r.Links) > 0 {
					link = r.Links[0]
				}
				title := mse.TitleOf(r) // data annotation: rank/date stripped
				if title == "" {
					title = r.Lines[0]
				}
				merged = append(merged, mergedResult{
					Engine:  c.engine.Name,
					Section: sec.Heading,
					Title:   title,
					Link:    link,
					rank:    i,
				})
			}
		}
	}
	// Interleave by per-engine rank.
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].rank < merged[j].rank })

	for i, r := range merged {
		if i >= 15 {
			fmt.Printf("  ... and %d more\n", len(merged)-i)
			break
		}
		fmt.Printf("%2d. [%s / %s] %s\n", i+1, r.Engine, r.Section, r.Title)
	}
	fmt.Printf("\n%d organic records merged, %d sponsored records filtered out\n",
		len(merged), sponsored)
}
