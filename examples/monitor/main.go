// Monitor: track a product across the result pages of a shopping-style
// search engine over time.  The wrapper is built once and stored as JSON;
// each monitoring cycle loads it, extracts the price-bearing sections and
// diffs them against the previous cycle — the kind of long-running
// shopping-agent workload the paper's introduction motivates.
//
// Run with:
//
//	go run ./examples/monitor
package main

import (
	"fmt"
	"log"
	"regexp"
	"strings"

	"mse"
	"mse/internal/synth"
)

var priceRe = regexp.MustCompile(`\$\d+\.\d{2}`)

// observation is one record sighting with an extracted price.
type observation struct {
	Section string
	Title   string
	Price   string
}

func main() {
	// Pick a synthetic engine whose schema includes price lines.
	var engine *synth.Engine
	for id := 0; id < 119 && engine == nil; id++ {
		e := synth.NewEngine(2006, id, id < 38)
		for _, ss := range e.Schema.Sections {
			if ss.Format.HasPrice {
				engine = e
				break
			}
		}
	}
	if engine == nil {
		log.Fatal("no price-bearing engine in the test bed")
	}
	fmt.Printf("monitoring %s\n", engine.Name)

	// One-time setup: train and serialize the wrapper.
	var samples []mse.SamplePage
	for q := 0; q < 5; q++ {
		p := engine.Page(q)
		samples = append(samples, mse.SamplePage{HTML: p.HTML, Query: p.Query})
	}
	trained, err := mse.Train(samples, nil)
	if err != nil {
		log.Fatal(err)
	}
	stored, err := trained.MarshalJSON()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored wrapper: %d bytes of JSON\n\n", len(stored))

	// Monitoring cycles: each cycle restores the wrapper from storage and
	// processes the latest result page.
	var previous map[string]observation
	for cycle, pageIdx := range []int{6, 7, 8, 9} {
		w, err := mse.LoadWrapper(stored, nil)
		if err != nil {
			log.Fatal(err)
		}
		page := engine.Page(pageIdx)
		current := map[string]observation{}
		for _, sec := range w.Extract(page.HTML, page.Query) {
			for _, r := range sec.Records {
				text := strings.Join(r.Lines, " ")
				price := priceRe.FindString(text)
				if price == "" || len(r.Lines) == 0 {
					continue
				}
				current[r.Lines[0]] = observation{
					Section: sec.Heading,
					Title:   r.Lines[0],
					Price:   price,
				}
			}
		}
		fmt.Printf("cycle %d (page %d): %d priced records", cycle+1, pageIdx, len(current))
		if previous == nil {
			fmt.Println(" (baseline)")
		} else {
			appeared, gone := 0, 0
			for k := range current {
				if _, ok := previous[k]; !ok {
					appeared++
				}
			}
			for k := range previous {
				if _, ok := current[k]; !ok {
					gone++
				}
			}
			fmt.Printf("; %d new, %d disappeared\n", appeared, gone)
		}
		for _, o := range current {
			fmt.Printf("    [%s] %-55s %s\n", o.Section, truncate(o.Title, 55), o.Price)
		}
		previous = current
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
