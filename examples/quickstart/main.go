// Quickstart: build an MSE wrapper from five sample result pages of one
// (synthetic) search engine, then extract all dynamic sections and their
// records from an unseen result page.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mse"
	"mse/internal/synth"
)

func main() {
	// A synthetic search engine stands in for a live one: it produces
	// result pages with multiple dynamic sections, a static template and
	// semi-dynamic decorations, exactly like the engines of the paper's
	// test bed.
	engine := synth.NewEngine(2006, 7, true)
	fmt.Printf("engine: %s (%d possible sections, %s layout)\n\n",
		engine.Name, len(engine.Schema.Sections), engine.Schema.Style)

	// Step 1: collect sample result pages for a few different queries.
	var samples []mse.SamplePage
	for q := 0; q < 5; q++ {
		page := engine.Page(q)
		samples = append(samples, mse.SamplePage{HTML: page.HTML, Query: page.Query})
		fmt.Printf("sample %d: query %v, %d sections, %d records\n",
			q, page.Query, len(page.Truth.Sections), page.Truth.TotalRecords())
	}

	// Step 2: train the wrapper (the paper's MSE pipeline, Steps 1-9).
	w, err := mse.Train(samples, nil)
	if err != nil {
		log.Fatalf("training: %v", err)
	}
	fmt.Printf("\nwrapper: %d section wrappers, %d section families\n",
		w.SectionCount(), w.FamilyCount())

	// Step 3: extract from an unseen result page.
	test := engine.Page(8)
	fmt.Printf("\nextracting from an unseen page (query %v):\n", test.Query)
	for _, s := range w.Extract(test.HTML, test.Query) {
		name := s.Heading
		if name == "" {
			name = "(unnamed)"
		}
		fmt.Printf("\nsection %q — %d records\n", name, len(s.Records))
		for i, r := range s.Records {
			fmt.Printf("  %2d. %s\n", i+1, r.Lines[0])
			for _, l := range r.Lines[1:] {
				fmt.Printf("      %s\n", l)
			}
			if len(r.Links) > 0 {
				fmt.Printf("      -> %s\n", r.Links[0])
			}
		}
	}
}
