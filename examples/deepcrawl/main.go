// Deepcrawl: harvesting deep-web data through a search interface — the
// paper's motivating deep-web-crawling application — with emphasis on
// *hidden sections*: section schemas that never occurred on the sample
// pages used to build the wrapper.  MSE's section families (§5.8) let the
// crawler keep extracting when such sections appear later in the crawl.
//
// Run with:
//
//	go run ./examples/deepcrawl
package main

import (
	"fmt"
	"log"
	"strings"

	"mse"
	"mse/internal/synth"
)

func main() {
	// Find a synthetic engine with a query-dependent section that is
	// absent from the training pages — a hidden section.
	engines := synth.GenerateTestbed(synth.Config{Seed: 2006, Engines: 38, MultiSection: 38, Queries: 10})
	var target *synth.Engine
	hiddenIdx := -1
	for _, e := range engines {
		seen := map[int]bool{}
		for q := 0; q < 5; q++ {
			for _, s := range e.Page(q).Truth.Sections {
				seen[s.SchemaIndex] = true
			}
		}
		for q := 5; q < 10; q++ {
			for _, s := range e.Page(q).Truth.Sections {
				if !seen[s.SchemaIndex] {
					target, hiddenIdx = e, s.SchemaIndex
				}
			}
		}
		if target != nil {
			break
		}
	}
	if target == nil {
		log.Fatal("test bed contains no hidden-section engine")
	}
	fmt.Printf("crawling %s; section schema %d (%q) is hidden from the samples\n\n",
		target.Name, hiddenIdx, target.Schema.Sections[hiddenIdx].Heading)

	// Build the wrapper from the five sample pages (which never show the
	// hidden section).
	var samples []mse.SamplePage
	for q := 0; q < 5; q++ {
		p := target.Page(q)
		samples = append(samples, mse.SamplePage{HTML: p.HTML, Query: p.Query})
	}
	w, err := mse.Train(samples, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrapper: %d section wrappers, %d families\n\n",
		w.SectionCount(), w.FamilyCount())

	// Crawl the remaining result pages and count the harvest.
	records := 0
	hiddenRecords := 0
	for q := 5; q < 10; q++ {
		page := target.Page(q)
		secs := w.Extract(page.HTML, page.Query)
		// Which ground-truth markers belong to the hidden schema?
		hiddenMarkers := map[string]bool{}
		for _, s := range page.Truth.Sections {
			if s.SchemaIndex == hiddenIdx {
				for _, r := range s.Records {
					hiddenMarkers[r.Marker] = true
				}
			}
		}
		for _, sec := range secs {
			for _, r := range sec.Records {
				records++
				for m := range hiddenMarkers {
					for _, l := range r.Lines {
						if strings.Contains(l, m) {
							hiddenRecords++
							fmt.Printf("page %d: hidden-section record recovered under %q: %s\n",
								q, sec.Heading, r.Lines[0])
						}
					}
				}
			}
		}
	}
	fmt.Printf("\nharvested %d records from 5 crawl pages; %d of them from the hidden section\n",
		records, hiddenRecords)
	if hiddenRecords == 0 {
		fmt.Println("(the hidden section did not match a family on this engine — the paper's residual error case)")
	}
}
