module mse

go 1.22
