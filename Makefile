# Pre-merge gate: `make check` runs exactly what a PR must keep green —
# tier-1 (build + full test suite), vet, and the race-sensitive packages
# under the race detector.

GO ?= go

.PHONY: all build test vet race drift relearn smoke scenario check stress bench benchcmp benchgate clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The concurrency-heavy packages — observability, the service layer, the
# tree-distance cache, fingerprinting, the worker pool, the parallel
# pipeline stages and the pooled parse/render/apply fast path — run under
# the race detector, plus the end-to-end differential tests that pin the
# cached/parallel and pooled-arena outputs to their reference paths.
race:
	$(GO) test -race ./internal/obs ./internal/quality ./internal/relearn \
		./internal/serve \
		./internal/editdist ./internal/dom ./internal/par ./internal/cluster \
		./internal/core ./internal/htmlparse ./internal/layout ./internal/wrapper
	$(GO) test -race -run 'TestDifferential' .

# drift replays the synthetic drift schedule through the full HTTP stack:
# three engines served concurrently, one silently switching to a
# redesigned template, with the detector required to escalate the drifted
# engine (OK -> SUSPECT -> DRIFTED) while the stable engines stay OK.
drift:
	$(GO) test -count=1 -run 'TestDriftScheduleEndToEnd' ./internal/serve

# relearn replays the self-healing loop through the full HTTP stack: an
# engine redesigns its template mid-run, the drift verdict schedules a
# background relearn over the sampled traffic, the canary-validated
# candidate hot-swaps in with zero failed requests, plus the failure path
# (backoff, circuit breaker, manual recovery) under the race detector.
relearn:
	$(GO) test -race -count=1 -run 'TestRelearnHealLoopEndToEnd|TestRelearnFailureBackoffCircuitAndManualRecovery' ./internal/serve

# smoke builds the real mse-serve binary and drives it end to end with
# the JSON access log and wide-event journal on, strict-parsing /metrics,
# /driftz, the journal file and every log line.
smoke:
	$(GO) test -count=1 -run 'TestServeSmoke' ./cmd/mse-serve

# scenario replays the committed drift-heal example scenario twice
# against an in-process mse-serve with self-healing enabled and requires
# byte-identical reports (the determinism contract), then builds the
# real mse-serve and mse-loadgen binaries and replays the same scenario
# over a socket: recall collapses at the scheduled template cutover, the
# relearn hot-swap is observed, recall recovers above threshold, zero
# non-2xx, exit 0.
scenario:
	$(GO) test -race -count=1 -run 'TestScenario' ./internal/scenario
	$(GO) test -count=1 -run 'TestLoadgenSmoke' ./cmd/mse-loadgen

check: build vet test race drift relearn smoke scenario

# stress storms the extraction service with hundreds of concurrent
# deadline-bearing /extract requests under the race detector: admission
# control, cancellation, panic recovery and the pooled arenas all get
# exercised at once, and the test fails on any leaked arena or scratch.
stress:
	MSE_STRESS_N=300 $(GO) test -race -count=1 -v -run TestStressExtract ./internal/serve

# bench regenerates the paper-table benchmarks with allocation stats and
# records the raw runs in a dated BENCH_<date>.json for before/after
# comparisons across PRs.  An existing file for today is never clobbered:
# later runs get a .2, .3, ... suffix so a baseline captured earlier in
# the day survives for benchcmp.
bench:
	@out=BENCH_$$(date +%Y-%m-%d).json; n=2; \
	while [ -e $$out ]; do out=BENCH_$$(date +%Y-%m-%d).$$n.json; n=$$((n+1)); done; \
	$(GO) test -run NONE -bench 'BenchmarkTable|BenchmarkWrapper|BenchmarkExtract' \
		-benchmem -json . | tee $$out

# benchcmp diffs the two newest BENCH_*.json files (ns/op, B/op,
# allocs/op per benchmark).
benchcmp:
	$(GO) run ./cmd/mse-benchcmp

# benchgate runs the extraction hot-path benchmarks (raw, cached, batch)
# at a fixed iteration count and fails if allocs/op regresses more than
# 15% against the newest committed BENCH_*.json snapshot (ns/op is
# informational on shared runners; set MSE_BENCHGATE_NS=1 to enforce it
# too).  The -benchmarks allowlist enforces only the deterministic-alloc
# paths: the batch variants ride through HTTP buffers whose alloc counts
# jitter run to run, so they print as informational.  CI smoke.
benchgate:
	$(GO) run ./cmd/mse-benchcmp -gate \
		-bench 'BenchmarkExtractHotPath|BenchmarkExtractCachedHotPath|BenchmarkExtractBatch' \
		-benchmarks 'BenchmarkExtractHotPath|BenchmarkExtractCachedHotPath' \
		-threshold 0.15

clean:
	$(GO) clean ./...
