# Pre-merge gate: `make check` runs exactly what a PR must keep green —
# tier-1 (build + full test suite), vet, and the race-sensitive packages
# under the race detector.

GO ?= go

.PHONY: all build test vet race check bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The concurrency-heavy packages — observability, the service layer, the
# tree-distance cache, fingerprinting, the worker pool and the parallel
# pipeline stages — run under the race detector, plus the end-to-end
# differential test that pins cached/parallel output to the serial
# uncached reference.
race:
	$(GO) test -race ./internal/obs ./internal/serve ./internal/editdist \
		./internal/dom ./internal/par ./internal/cluster ./internal/core
	$(GO) test -race -run 'TestDifferential' .

check: build vet test race

# bench regenerates the paper-table benchmarks with allocation stats and
# records the raw runs in a dated BENCH_<date>.json for before/after
# comparisons across PRs.
bench:
	$(GO) test -run NONE -bench 'BenchmarkTable|BenchmarkWrapper|BenchmarkExtractionThroughput' \
		-benchmem -json . | tee BENCH_$$(date +%Y-%m-%d).json

clean:
	$(GO) clean ./...
