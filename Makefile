# Pre-merge gate: `make check` runs exactly what a PR must keep green —
# tier-1 (build + full test suite), vet, and the race-sensitive packages
# under the race detector.

GO ?= go

.PHONY: all build test vet race check bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The observability and service layers are the concurrency-heavy packages;
# run them under the race detector.
race:
	$(GO) test -race ./internal/obs ./internal/serve

check: build vet test race

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
