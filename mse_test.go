package mse

import (
	"strings"
	"testing"

	"mse/internal/synth"
)

func trainOn(t *testing.T, e *synth.Engine, n int) *Wrapper {
	t.Helper()
	var samples []SamplePage
	for q := 0; q < n; q++ {
		gp := e.Page(q)
		samples = append(samples, SamplePage{HTML: gp.HTML, Query: gp.Query})
	}
	w, err := Train(samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestTrainAndExtract(t *testing.T) {
	e := synth.NewEngine(99, 1, true)
	w := trainOn(t, e, 5)
	gp := e.Page(7)
	secs := w.Extract(gp.HTML, gp.Query)
	if len(secs) == 0 {
		t.Fatalf("no sections extracted")
	}
	// Every section keeps the section-record relationship: records in
	// page order, line ranges nested in the section's.
	for _, s := range secs {
		prevEnd := s.Start
		for _, r := range s.Records {
			if r.Start < prevEnd {
				t.Fatalf("records out of order in %q", s.Heading)
			}
			if r.Start < s.Start || r.End > s.End {
				t.Fatalf("record range outside section range")
			}
			prevEnd = r.End
		}
	}
}

func TestTrainRequiresTwoPages(t *testing.T) {
	if _, err := Train(nil, nil); err == nil {
		t.Fatalf("Train with no samples should fail")
	}
	gp := synth.NewEngine(99, 1, false).Page(0)
	if _, err := Train([]SamplePage{{HTML: gp.HTML, Query: gp.Query}}, nil); err == nil {
		t.Fatalf("Train with one sample should fail")
	}
}

func TestWrapperJSONRoundTrip(t *testing.T) {
	e := synth.NewEngine(99, 2, true)
	w := trainOn(t, e, 5)
	data, err := w.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := LoadWrapper(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	gp := e.Page(6)
	a := w.Extract(gp.HTML, gp.Query)
	b := restored.Extract(gp.HTML, gp.Query)
	if len(a) != len(b) {
		t.Fatalf("sections differ after round trip: %d vs %d", len(a), len(b))
	}
	if restored.SectionCount() != w.SectionCount() ||
		restored.FamilyCount() != w.FamilyCount() {
		t.Fatalf("counts differ after round trip")
	}
}

func TestLoadWrapperRejectsGarbage(t *testing.T) {
	if _, err := LoadWrapper([]byte("{"), nil); err == nil {
		t.Fatalf("garbage JSON accepted")
	}
	if _, err := LoadWrapper([]byte(`{"wrappers":[{"pref":"not-a-path"}]}`), nil); err == nil {
		t.Fatalf("bad pref accepted")
	}
}

func TestExtractWithoutQueryTerms(t *testing.T) {
	// Extraction must work when the retrieving query is unknown (nil).
	e := synth.NewEngine(99, 3, false)
	w := trainOn(t, e, 5)
	gp := e.Page(8)
	secs := w.Extract(gp.HTML, nil)
	joined := ""
	for _, s := range secs {
		for _, r := range s.Records {
			joined += strings.Join(r.Lines, "\n") + "\n"
		}
	}
	found, total := 0, 0
	for _, gts := range gp.Truth.Sections {
		for _, r := range gts.Records {
			total++
			if strings.Contains(joined, r.Marker) {
				found++
			}
		}
	}
	if total > 0 && found == 0 {
		t.Fatalf("nil-query extraction found none of %d records", total)
	}
}

func TestHiddenSectionViaFamily(t *testing.T) {
	// Find an engine with a section absent from the first five pages but
	// present later; the wrapper should still extract something for it
	// when families are enabled.
	engines := synth.GenerateTestbed(synth.Config{Seed: 2006, Engines: 38, MultiSection: 38, Queries: 10})
	tried := 0
	for _, e := range engines {
		pages := e.Pages(10)
		seen := map[int]bool{}
		for _, gp := range pages[:5] {
			for _, s := range gp.Truth.Sections {
				seen[s.SchemaIndex] = true
			}
		}
		hiddenPage, hiddenIdx := -1, -1
		for q := 5; q < 10; q++ {
			for _, s := range pages[q].Truth.Sections {
				if !seen[s.SchemaIndex] {
					hiddenPage, hiddenIdx = q, s.SchemaIndex
				}
			}
		}
		if hiddenPage < 0 {
			continue
		}
		tried++
		w := trainOn(t, e, 5)
		gp := pages[hiddenPage]
		secs := w.Extract(gp.HTML, gp.Query)
		var gts *synth.GTSection
		for i := range gp.Truth.Sections {
			if gp.Truth.Sections[i].SchemaIndex == hiddenIdx {
				gts = &gp.Truth.Sections[i]
			}
		}
		joined := ""
		for _, s := range secs {
			for _, r := range s.Records {
				joined += strings.Join(r.Lines, "\n") + "\n"
			}
		}
		for _, r := range gts.Records {
			if strings.Contains(joined, r.Marker) {
				t.Logf("hidden section %q of engine %d recovered via family", gts.Heading, e.ID)
				return // at least one hidden section recovered
			}
		}
	}
	if tried == 0 {
		t.Skip("test bed produced no hidden-section cases")
	}
	t.Fatalf("no hidden section recovered across %d candidate engines", tried)
}

func TestConcurrentExtract(t *testing.T) {
	e := synth.NewEngine(99, 5, true)
	w := trainOn(t, e, 5)
	pages := e.Pages(10)
	done := make(chan int, 16)
	for i := 0; i < 16; i++ {
		go func(i int) {
			gp := pages[5+i%5]
			secs := w.Extract(gp.HTML, gp.Query)
			done <- len(secs)
		}(i)
	}
	first := <-done
	for i := 1; i < 16; i++ {
		n := <-done
		// All goroutines hitting the same page subset must agree (each
		// page deterministic); just require no panic and plausible output.
		_ = n
	}
	_ = first
}
