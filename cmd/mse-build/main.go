// Command mse-build constructs an MSE extraction wrapper from sample
// result pages of one search engine and writes it as JSON.
//
// Usage:
//
//	mse-build [-trace] -out wrapper.json page1.html:query1+terms page2.html:query2+terms ...
//
// Each argument is an HTML file path, optionally followed by ":" and the
// query terms (separated by "+") that retrieved the page.  At least two
// sample pages are required; the paper uses five.  With -trace the
// per-stage time breakdown of the pipeline is printed to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mse"
	"mse/internal/obs"
)

func main() {
	out := flag.String("out", "wrapper.json", "output wrapper file")
	trace := flag.Bool("trace", false, "print the per-stage time breakdown to stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr,
			"usage: mse-build [-trace] [-out wrapper.json] page.html[:term+term...] ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 2 {
		flag.Usage()
		os.Exit(2)
	}

	var samples []mse.SamplePage
	for _, arg := range flag.Args() {
		path, queryPart, _ := strings.Cut(arg, ":")
		data, err := os.ReadFile(path)
		if err != nil {
			fatal("reading %s: %v", path, err)
		}
		var query []string
		if queryPart != "" {
			query = strings.Split(queryPart, "+")
		}
		samples = append(samples, mse.SamplePage{HTML: string(data), Query: query})
	}

	opt := mse.DefaultOptions()
	if *trace {
		opt.Obs = obs.NewTracer()
	}
	w, err := mse.Train(samples, &opt)
	if err != nil {
		fatal("training: %v", err)
	}
	if *trace {
		for _, snap := range opt.Obs.Snapshot() {
			fmt.Fprint(os.Stderr, snap.Format())
		}
	}
	data, err := json.MarshalIndent(w, "", "  ")
	if err != nil {
		fatal("encoding wrapper: %v", err)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal("writing %s: %v", *out, err)
	}
	fmt.Printf("wrote %s: %d section wrappers, %d families\n",
		*out, w.SectionCount(), w.FamilyCount())
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mse-build: "+format+"\n", args...)
	os.Exit(1)
}
