// Command mse-extract applies a stored MSE wrapper to result pages and
// prints the extracted sections and records.
//
// Usage:
//
//	mse-extract -wrapper wrapper.json [-json] page.html[:term+term...] ...
//
// With -json the output is machine-readable; otherwise a human-readable
// outline is printed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mse"
)

func main() {
	wrapperPath := flag.String("wrapper", "wrapper.json", "wrapper file from mse-build")
	asJSON := flag.Bool("json", false, "emit JSON instead of an outline")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr,
			"usage: mse-extract [-wrapper wrapper.json] [-json] page.html[:term+term...] ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	wdata, err := os.ReadFile(*wrapperPath)
	if err != nil {
		fatal("reading wrapper: %v", err)
	}
	w, err := mse.LoadWrapper(wdata, nil)
	if err != nil {
		fatal("loading wrapper: %v", err)
	}

	type pageOut struct {
		Page     string         `json:"page"`
		Sections []*mse.Section `json:"sections"`
	}
	var all []pageOut
	for _, arg := range flag.Args() {
		path, queryPart, _ := strings.Cut(arg, ":")
		data, err := os.ReadFile(path)
		if err != nil {
			fatal("reading %s: %v", path, err)
		}
		var query []string
		if queryPart != "" {
			query = strings.Split(queryPart, "+")
		}
		secs := w.Extract(string(data), query)
		all = append(all, pageOut{Page: path, Sections: secs})
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fatal("encoding: %v", err)
		}
		return
	}
	for _, po := range all {
		fmt.Printf("== %s: %d sections\n", po.Page, len(po.Sections))
		for _, s := range po.Sections {
			name := s.Heading
			if name == "" {
				name = "(unnamed section)"
			}
			fmt.Printf("  section %q: %d records\n", name, len(s.Records))
			for i, r := range s.Records {
				first := ""
				if len(r.Lines) > 0 {
					first = r.Lines[0]
				}
				fmt.Printf("    %2d. %s\n", i+1, first)
				for _, l := range r.Lines[1:] {
					fmt.Printf("        %s\n", l)
				}
			}
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mse-extract: "+format+"\n", args...)
	os.Exit(1)
}
