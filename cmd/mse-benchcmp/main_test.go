package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestParseFileReassemblesSplitLines mirrors what go test -json actually
// emits: the benchmark name flushes as its own output event ending in a
// tab, the counts arrive in a later event, log lines are interleaved, and
// a foreign annotation line ends the file.
func TestParseFileReassemblesSplitLines(t *testing.T) {
	const stream = `{"Action":"output","Package":"mse","Output":"goos: linux\n"}
{"Action":"output","Package":"mse","Output":"=== RUN   BenchmarkA\n"}
{"Action":"output","Package":"mse","Output":"BenchmarkA\n"}
{"Action":"output","Package":"mse","Output":"    bench_test.go:48: table output\n"}
{"Action":"output","Package":"mse","Output":"BenchmarkA   \t"}
{"Action":"output","Package":"mse","Output":"       4\t 295569819 ns/op\t58691180 B/op\t 1032496 allocs/op\n"}
{"Action":"output","Package":"mse","Output":"BenchmarkB-8   \t  100\t  123 ns/op\t 456 B/op\t 7 allocs/op\n"}
{"Action":"pass","Package":"mse"}
{"Note": "hand-written annotation", "Benchmark": "BenchmarkA"}
`
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := os.WriteFile(path, []byte(stream), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	a := got["BenchmarkA"]
	if a == nil || a.ns() != 295569819 || a.b() != 58691180 || a.a() != 1032496 {
		t.Fatalf("BenchmarkA = %+v", a)
	}
	// The -8 GOMAXPROCS suffix is stripped.
	b := got["BenchmarkB"]
	if b == nil || b.ns() != 123 || b.b() != 456 || b.a() != 7 {
		t.Fatalf("BenchmarkB = %+v", b)
	}
}

func TestParseBenchLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"BenchmarkA",                  // run announcement, no metrics
		"=== RUN   BenchmarkA",        // test framework chatter
		"goos: linux",                 // header
		"Benchmark 4 100 apples/op",   // no ns/op
		"    bench_test.go:48: table", // log line
	} {
		if name, _, ok := parseBenchLine(line); ok {
			t.Errorf("line %q parsed as benchmark %q", line, name)
		}
	}
}

// TestParseBenchLineAveragesViaAdd checks repeated runs of one benchmark
// average rather than overwrite.
func TestParseBenchLineAveragesViaAdd(t *testing.T) {
	out := map[string]*result{}
	addBenchLine(out, "BenchmarkA\t 10\t 100 ns/op\t 10 B/op\t 1 allocs/op")
	addBenchLine(out, "BenchmarkA\t 10\t 300 ns/op\t 30 B/op\t 3 allocs/op")
	a := out["BenchmarkA"]
	if a.ns() != 200 || a.b() != 20 || a.a() != 2 {
		t.Fatalf("averaged = ns %v B %v allocs %v", a.ns(), a.b(), a.a())
	}
}

func TestGateResultsEnforceAllowlist(t *testing.T) {
	base := map[string]*result{
		"BenchmarkOld": {runs: 1, nsOp: 1000, allocs: 100, hasMem: true},
		"BenchmarkNew": {runs: 1, nsOp: 1000, allocs: 100, hasMem: true},
	}
	// Both regress 2x on allocs/op — far past any threshold.
	fresh := map[string]*result{
		"BenchmarkOld": {runs: 1, nsOp: 1000, allocs: 200, hasMem: true},
		"BenchmarkNew": {runs: 1, nsOp: 1000, allocs: 200, hasMem: true},
	}
	var buf strings.Builder
	if !gateResults(&buf, base, fresh, 0.15, nil, false) {
		t.Fatal("no allowlist: a 2x allocs/op regression must fail the gate")
	}
	buf.Reset()
	re := regexp.MustCompile(`^BenchmarkOld$`)
	if !gateResults(&buf, base, fresh, 0.15, re, false) {
		t.Fatal("allowlisted benchmark regressed but gate passed")
	}
	if !strings.Contains(buf.String(), "informational (not in -benchmarks allowlist)") {
		t.Fatalf("non-allowlisted benchmark not marked informational:\n%s", buf.String())
	}
	// Only the benchmark outside the allowlist regresses: gate must pass.
	fresh["BenchmarkOld"] = &result{runs: 1, nsOp: 1000, allocs: 100, hasMem: true}
	buf.Reset()
	if gateResults(&buf, base, fresh, 0.15, re, false) {
		t.Fatalf("regression outside the allowlist failed the gate:\n%s", buf.String())
	}
}

func TestGateResultsMissingBaselineSkipped(t *testing.T) {
	base := map[string]*result{}
	fresh := map[string]*result{
		"BenchmarkBrandNew": {runs: 1, nsOp: 1000, allocs: 100, hasMem: true},
	}
	var buf strings.Builder
	if gateResults(&buf, base, fresh, 0.15, nil, false) {
		t.Fatal("benchmark with no baseline entry must not fail the gate")
	}
	if !strings.Contains(buf.String(), "no baseline entry; skipped") {
		t.Fatalf("missing-baseline line not printed:\n%s", buf.String())
	}
}
