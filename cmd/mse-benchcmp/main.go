// Command mse-benchcmp compares two benchmark runs recorded by `make
// bench` (go test -json streams in BENCH_*.json files) and prints the
// per-benchmark deltas for ns/op, B/op and allocs/op.
//
// Usage:
//
//	mse-benchcmp                 # diff the two newest BENCH_*.json by mtime
//	mse-benchcmp OLD.json NEW.json
//	mse-benchcmp -gate [-bench NAME] [-threshold 0.15] [-benchmarks REGEX]
//
// Benchmarks present in only one of the runs are listed without deltas.
// Repeated runs of the same benchmark within one file are averaged.
//
// Gate mode (`-gate`, used by `make benchgate` and CI) runs the named
// benchmark fresh with a fixed iteration count and compares it against the
// newest committed BENCH_*.json.  Only allocs/op is gated hard: it is
// deterministic for a fixed benchtime, so the check is non-flaky on noisy
// shared runners.  ns/op deltas are printed for the log and only enforced
// when MSE_BENCHGATE_NS=1 (e.g. on a quiet dedicated box).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// testEvent is the subset of the go test -json stream we consume.  Foreign
// lines (e.g. hand-written annotation records) simply fail to decode into
// an "output" action and are skipped.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// result accumulates the metrics of one benchmark across repeated runs.
type result struct {
	runs   int
	nsOp   float64
	bOp    float64
	allocs float64
	hasMem bool
}

func main() {
	gate := flag.Bool("gate", false, "run -bench fresh and fail on regression vs the newest BENCH_*.json")
	benchName := flag.String("bench", "BenchmarkExtractHotPath", "benchmark to gate on (anchored; Parallel variants included)")
	threshold := flag.Float64("threshold", 0.15, "relative regression allowed before the gate fails")
	enforce := flag.String("benchmarks", "",
		"gate mode: regex allowlist of benchmark names to enforce; non-matching results are informational (empty = enforce all)")
	flag.Parse()

	if *gate {
		var enforceRE *regexp.Regexp
		if *enforce != "" {
			var err error
			if enforceRE, err = regexp.Compile(*enforce); err != nil {
				fmt.Fprintln(os.Stderr, "mse-benchcmp: bad -benchmarks regex:", err)
				os.Exit(2)
			}
		}
		os.Exit(runGate(*benchName, *threshold, enforceRE))
	}

	var oldFile, newFile string
	switch flag.NArg() {
	case 0:
		files, err := filepath.Glob("BENCH_*.json")
		if err != nil || len(files) < 2 {
			fmt.Fprintf(os.Stderr, "mse-benchcmp: need two BENCH_*.json files (found %d); run `make bench` twice or pass two files\n", len(files))
			os.Exit(1)
		}
		sort.Slice(files, func(i, j int) bool { return mtime(files[i]) < mtime(files[j]) })
		oldFile, newFile = files[len(files)-2], files[len(files)-1]
	case 2:
		oldFile, newFile = flag.Arg(0), flag.Arg(1)
	default:
		fmt.Fprintln(os.Stderr, "usage: mse-benchcmp [OLD.json NEW.json] | mse-benchcmp -gate [-bench NAME] [-threshold F]")
		os.Exit(2)
	}

	oldRes, err := parseFile(oldFile)
	if err != nil {
		fatal(err)
	}
	newRes, err := parseFile(newFile)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("old: %s\nnew: %s\n\n", oldFile, newFile)

	names := map[string]bool{}
	for n := range oldRes {
		names[n] = true
	}
	for n := range newRes {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	fmt.Printf("%-40s %26s %26s %22s\n", "benchmark", "ns/op", "B/op", "allocs/op")
	for _, n := range sorted {
		o, haveOld := oldRes[n]
		nw, haveNew := newRes[n]
		switch {
		case !haveOld:
			fmt.Printf("%-40s %26s %26s %22s\n", n, only(nw.ns(), "new"), only(nw.b(), "new"), only(nw.a(), "new"))
		case !haveNew:
			fmt.Printf("%-40s %26s %26s %22s\n", n, only(o.ns(), "old"), only(o.b(), "old"), only(o.a(), "old"))
		default:
			fmt.Printf("%-40s %26s %26s %22s\n", n,
				delta(o.ns(), nw.ns()), delta(o.b(), nw.b()), delta(o.a(), nw.a()))
		}
	}
}

func (r *result) ns() float64 { return r.nsOp / float64(r.runs) }
func (r *result) b() float64 {
	if !r.hasMem {
		return -1
	}
	return r.bOp / float64(r.runs)
}
func (r *result) a() float64 {
	if !r.hasMem {
		return -1
	}
	return r.allocs / float64(r.runs)
}

// delta formats "old → new (±x%)"; negative percentages are improvements.
func delta(o, n float64) string {
	if o < 0 || n < 0 {
		return "-"
	}
	if o == 0 {
		return fmt.Sprintf("%s → %s", human(o), human(n))
	}
	return fmt.Sprintf("%s → %s (%+.1f%%)", human(o), human(n), 100*(n-o)/o)
}

func only(v float64, which string) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%s (%s only)", human(v), which)
}

// human renders a metric compactly (12.3M, 456.7k, 89).
func human(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
}

func mtime(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.ModTime().UnixNano()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mse-benchcmp:", err)
	os.Exit(1)
}

func parseFile(path string) (map[string]*result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res, err := parseStream(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return res, nil
}

func parseStream(r io.Reader) (map[string]*result, error) {
	out := map[string]*result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	// go test -json splits one benchmark result line across several
	// "output" events (the name flushes with a trailing tab, the counts
	// arrive later), so reassemble the output stream into complete
	// text lines before parsing.
	var pending strings.Builder
	for sc.Scan() {
		var ev testEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // annotation or malformed line; not a test event
		}
		if ev.Action != "output" {
			continue
		}
		pending.WriteString(ev.Output)
		text := pending.String()
		for {
			nl := strings.IndexByte(text, '\n')
			if nl < 0 {
				break
			}
			addBenchLine(out, text[:nl])
			text = text[nl+1:]
		}
		pending.Reset()
		pending.WriteString(text)
	}
	addBenchLine(out, pending.String())
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	return out, nil
}

// addBenchLine parses one reassembled output line and, if it is a
// benchmark result, folds it into the accumulator.
func addBenchLine(out map[string]*result, line string) {
	name, r, ok := parseBenchLine(line)
	if !ok {
		return
	}
	acc, exists := out[name]
	if !exists {
		out[name] = r
		return
	}
	acc.runs += r.runs
	acc.nsOp += r.nsOp
	acc.bOp += r.bOp
	acc.allocs += r.allocs
	acc.hasMem = acc.hasMem || r.hasMem
}

// parseBenchLine extracts one "BenchmarkName  N  x ns/op  y B/op  z
// allocs/op" result.  The -8 style GOMAXPROCS suffix is stripped so runs
// from different machines still line up.
func parseBenchLine(line string) (string, *result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", nil, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", nil, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := &result{runs: 1}
	seen := false
	for i := 1; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.nsOp = v
			seen = true
		case "B/op":
			r.bOp = v
			r.hasMem = true
		case "allocs/op":
			r.allocs = v
			r.hasMem = true
		}
	}
	if !seen {
		return "", nil, false
	}
	return name, r, true
}

// runGate runs the named benchmark fresh with a fixed iteration count and
// compares it to the newest committed BENCH_*.json.  allocs/op regressing
// beyond the threshold fails the gate; allocation counts are deterministic
// for a fixed -benchtime Nx, which keeps this check non-flaky on shared CI
// runners.  ns/op deltas are printed and only enforced when
// MSE_BENCHGATE_NS=1.  With enforce non-nil, only benchmarks matching the
// regex can fail the gate — the allowlist lets a -bench pattern pick up
// newly added benchmarks (for the log) without older baselines that lack
// them, or their different cost profile, tripping the gate.  Returns the
// process exit code.
func runGate(bench string, threshold float64, enforce *regexp.Regexp) int {
	files, err := filepath.Glob("BENCH_*.json")
	if err != nil || len(files) == 0 {
		fmt.Fprintln(os.Stderr, "mse-benchcmp: no BENCH_*.json baseline; run `make bench` and commit the snapshot")
		return 1
	}
	sort.Slice(files, func(i, j int) bool { return mtime(files[i]) < mtime(files[j]) })
	baseFile := files[len(files)-1]
	base, err := parseFile(baseFile)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("benchgate: running %s (3000x) against baseline %s\n", bench, baseFile)
	cmd := exec.Command("go", "test", "-run", "NONE", "-bench", bench,
		"-benchmem", "-benchtime", "3000x", "-json", ".")
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mse-benchcmp: benchmark run failed:", err)
		return 1
	}
	fresh, err := parseStream(strings.NewReader(string(out)))
	if err != nil {
		fmt.Fprintf(os.Stderr, "mse-benchcmp: no results for -bench %s: %v\n", bench, err)
		return 1
	}

	gateNS := os.Getenv("MSE_BENCHGATE_NS") == "1"
	if gateResults(os.Stdout, base, fresh, threshold, enforce, gateNS) {
		fmt.Println("benchgate: FAIL")
		return 1
	}
	fmt.Println("benchgate: ok")
	return 0
}

// gateResults compares fresh results to the baseline and prints one line
// per benchmark; it reports whether any enforced benchmark regressed.
func gateResults(w io.Writer, base, fresh map[string]*result, threshold float64, enforce *regexp.Regexp, gateNS bool) bool {
	failed := false
	names := make([]string, 0, len(fresh))
	for n := range fresh {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		nw := fresh[n]
		enforced := enforce == nil || enforce.MatchString(n)
		o, ok := base[n]
		if !ok {
			fmt.Fprintf(w, "%-40s no baseline entry; skipped\n", n)
			continue
		}
		status := "ok"
		if !enforced {
			status = "informational (not in -benchmarks allowlist)"
		}
		if enforced && o.a() >= 0 && nw.a() >= 0 && o.a() > 0 && (nw.a()-o.a())/o.a() > threshold {
			status = fmt.Sprintf("FAIL allocs/op regressed >%.0f%%", threshold*100)
			failed = true
		}
		nsNote := ""
		if o.ns() > 0 && (nw.ns()-o.ns())/o.ns() > threshold {
			if enforced && gateNS {
				status = fmt.Sprintf("FAIL ns/op regressed >%.0f%%", threshold*100)
				failed = true
			} else {
				nsNote = " [ns/op above threshold; informational]"
			}
		}
		fmt.Fprintf(w, "%-40s ns/op %s   allocs/op %s   %s%s\n",
			n, delta(o.ns(), nw.ns()), delta(o.a(), nw.a()), status, nsNote)
	}
	return failed
}
