// Command mse-serve runs an extraction service over stored MSE wrappers —
// the deployment shape of the paper's metasearch application.
//
// Usage:
//
//	mse-serve -addr :8080 -wrappers dir/ [-pprof] [-quiet]
//	          [-max-inflight N] [-queue-timeout D] [-log-format text|json]
//	          [-journal PATH] [-journal-sample N] [-drift-window N]
//	          [-cache-bytes N] [-shard k/N]
//	          [-snapshot PATH] [-snapshot-save PATH]
//	          [-relearn] [-relearn-sample-bytes N] [-relearn-min-pages N]
//	          [-relearn-train-pages N] [-relearn-holdout-pages N]
//	          [-relearn-backoff D]
//
// Every *.json file in the wrappers directory is loaded as one engine
// wrapper named after the file (sans extension).  Endpoints:
//
//	GET  /healthz
//	GET  /engines
//	GET  /metrics                           JSON metrics snapshot
//	GET  /statusz                           human-readable status page
//	GET  /driftz                            per-engine drift report
//	GET  /relearnz                          self-healing lifecycle report
//	POST /relearn/NAME                      manually trigger a relearn
//	POST /extract?engine=NAME&q=term+term   (body: result page HTML)
//	POST /extract/batch                     (body: {"items":[...]})
//
// With -relearn the service heals drifted engines automatically: recent
// request pages are sampled into a bounded per-engine reservoir (byte
// budget via -relearn-sample-bytes, content-address-deduped), a DRIFTED
// verdict schedules a background relearn over at least -relearn-min-pages
// sampled pages (induction over the newest -relearn-train-pages, canary
// over -relearn-holdout-pages of them), the candidate wrapper must beat
// the incumbent on a held-out canary slice, and only then is it hot-swapped — generation
// bump, cache invalidation, drift-baseline reset and snapshot persistence
// included.  Failed attempts retry with capped exponential backoff
// (-relearn-backoff); repeated failure pins the engine DEGRADED until an
// operator POSTs /relearn/NAME.
//
// -cache-bytes bounds the content-addressed extraction result cache (0
// disables it): byte-identical repeat pages are answered from the cache
// without re-running the pipeline, and a wrapper swap invalidates only
// that engine's entries.  -shard k/N makes this process shard k of an
// N-way fleet split by consistent hashing over engine names: only owned
// wrappers are loaded and requests for other engines get 421 naming the
// owner.  -snapshot loads the wrapper fleet (with generations) from a
// snapshot file when it exists, falling back to -wrappers otherwise;
// -snapshot-save writes a fresh snapshot after loading, so the next
// restart resumes the same generation sequence.
//
// With -journal the server appends one wide-event JSON line per sampled
// /extract request to PATH (1-in-N sampling via -journal-sample); the
// lines carry the request ID echoed in the X-Request-ID response header,
// so a journal line, an access-log line and the client's own records all
// correlate.  -drift-window tunes how many pages the drift detector's
// anomaly-rate smoothing spans.  -log-format json switches the access and
// service logs to JSON.
//
// With -pprof the net/http/pprof profiling handlers are mounted under
// /debug/pprof/ and the expvar dump under /debug/vars.  The server drains
// in-flight requests and exits cleanly on SIGINT/SIGTERM.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"mse/internal/core"
	"mse/internal/quality"
	"mse/internal/relearn"
	"mse/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("wrappers", "wrappers", "directory of <engine>.json wrapper files")
	withPprof := flag.Bool("pprof", false, "expose /debug/pprof/ and /debug/vars")
	quiet := flag.Bool("quiet", false, "disable the per-request access log")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown drain timeout")
	parallelism := flag.Int("parallelism", 0, "pipeline worker count per extraction (0 = GOMAXPROCS)")
	maxInflight := flag.Int("max-inflight", 0,
		"max concurrent extractions before requests queue (0 = 2x GOMAXPROCS, -1 = unlimited)")
	queueTimeout := flag.Duration("queue-timeout", time.Second,
		"how long an /extract request may wait for a slot before being shed with 429")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	journalPath := flag.String("journal", "",
		"append wide-event JSON lines for sampled /extract requests to this file")
	journalSample := flag.Int("journal-sample", 1,
		"journal 1 in N /extract requests (1 = every request)")
	driftWindow := flag.Int("drift-window", 0,
		"drift detector smoothing window in pages (0 = default)")
	cacheBytes := flag.Int64("cache-bytes", 256<<20,
		"byte bound for the content-addressed extraction result cache (0 disables)")
	shardSpec := flag.String("shard", "",
		"serve shard k of an N-way fleet as \"k/N\" (empty = own every engine)")
	snapshotPath := flag.String("snapshot", "",
		"load the wrapper fleet from this snapshot file when it exists (falls back to -wrappers)")
	snapshotSave := flag.String("snapshot-save", "",
		"write a registry snapshot to this file after loading")
	relearnOn := flag.Bool("relearn", false,
		"self-heal drifted engines: sample served pages, relearn in the background on a DRIFTED verdict, canary-validate and hot-swap")
	relearnSampleBytes := flag.Int64("relearn-sample-bytes", 8<<20,
		"per-engine byte budget for the relearn page reservoir")
	relearnMinPages := flag.Int("relearn-min-pages", 6,
		"minimum sampled pages before a relearn attempt runs")
	relearnTrainPages := flag.Int("relearn-train-pages", 0,
		"newest sampled pages fed to relearn wrapper induction (0 = default); keep small so a fresh drift fills the window quickly")
	relearnHoldoutPages := flag.Int("relearn-holdout-pages", 0,
		"sampled pages held out of relearn training for canary validation (0 = default)")
	relearnBackoff := flag.Duration("relearn-backoff", 5*time.Second,
		"initial retry delay after a failed relearn attempt (doubles per failure, capped)")
	flag.Parse()

	// Fail fast on nonsense numeric flags.  Several downstream configs
	// quietly "sanitize" out-of-range values to defaults, which turns a
	// typo like -relearn-min-pages 0 into silently different behavior; a
	// startup error is the honest response.
	for _, c := range []struct {
		ok   bool
		flag string
		why  string
	}{
		{*parallelism >= 0, "-parallelism", "must be >= 0 (0 = GOMAXPROCS)"},
		{*maxInflight >= -1, "-max-inflight", "must be >= -1 (0 = 2x GOMAXPROCS, -1 = unlimited)"},
		{*queueTimeout > 0, "-queue-timeout", "must be positive"},
		{*drain > 0, "-drain", "must be positive"},
		{*journalSample >= 1, "-journal-sample", "must be >= 1"},
		{*driftWindow >= 0, "-drift-window", "must be >= 0 (0 = default)"},
		{*cacheBytes >= 0, "-cache-bytes", "must be >= 0 (0 disables)"},
		{*relearnSampleBytes > 0, "-relearn-sample-bytes", "must be positive"},
		{*relearnMinPages >= 3, "-relearn-min-pages", "must be >= 3 (2 to train + 1 to hold out)"},
		{*relearnTrainPages == 0 || *relearnTrainPages >= 2, "-relearn-train-pages", "must be >= 2 (0 = default); induction needs two pages"},
		{*relearnHoldoutPages >= 0, "-relearn-holdout-pages", "must be >= 0 (0 = default)"},
		{*relearnBackoff > 0, "-relearn-backoff", "must be positive"},
	} {
		if !c.ok {
			fmt.Fprintf(os.Stderr, "mse-serve: invalid %s: %s\n", c.flag, c.why)
			os.Exit(2)
		}
	}

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		slog.Error("invalid -log-format", "value", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)

	opts := core.DefaultOptions()
	opts.Parallelism = *parallelism
	reg := serve.NewRegistry(opts)
	if !*quiet {
		reg.SetAccessLog(logger)
	}
	if *driftWindow > 0 {
		cfg := quality.DefaultConfig()
		cfg.Window = *driftWindow
		reg.SetQualityConfig(cfg)
	}
	if *journalPath != "" {
		f, err := os.OpenFile(*journalPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(logger, "opening journal", err)
		}
		defer f.Close()
		reg.SetJournal(f, *journalSample)
	}
	// Admission control: by default admit roughly two extractions per CPU
	// — extraction is CPU-bound, so beyond that extra concurrency only
	// grows latency and pooled-memory footprint.  Negative disables.
	inflight := *maxInflight
	if inflight == 0 {
		inflight = 2 * runtime.GOMAXPROCS(0)
	}
	reg.SetLimits(inflight, *queueTimeout)
	reg.SetCache(*cacheBytes)
	if *shardSpec != "" {
		k, n, err := parseShard(*shardSpec)
		if err != nil {
			fatal(logger, "parsing -shard", err)
		}
		if err := reg.SetShard(k, n); err != nil {
			fatal(logger, "configuring shard", err)
		}
	}
	// Arm swap persistence: every wrapper swap (relearn- or operator-driven)
	// rewrites this snapshot, so a restart cannot resurrect a replaced
	// wrapper.  -snapshot-save wins when both paths are given.
	persistPath := *snapshotSave
	if persistPath == "" {
		persistPath = *snapshotPath
	}
	reg.SetSnapshotPath(persistPath)
	if *relearnOn {
		cfg := relearn.DefaultConfig()
		cfg.SampleBytes = *relearnSampleBytes
		cfg.MinPages = *relearnMinPages
		if *relearnTrainPages > 0 {
			cfg.TrainPages = *relearnTrainPages
		}
		if *relearnHoldoutPages > 0 {
			cfg.HoldoutPages = *relearnHoldoutPages
		}
		cfg.Backoff = *relearnBackoff
		ctrl := reg.EnableRelearn(cfg)
		// Jobs cancel cooperatively on shutdown, after the server drains.
		defer ctrl.Close()
	}

	loaded, skipped := 0, 0
	if *snapshotPath != "" {
		if f, err := os.Open(*snapshotPath); err == nil {
			n, lerr := reg.LoadSnapshot(f)
			f.Close()
			if lerr != nil {
				fatal(logger, "loading snapshot", lerr)
			}
			loaded = n
			logger.Info("loaded snapshot", "path", *snapshotPath, "engines", n)
		} else if !os.IsNotExist(err) {
			fatal(logger, "opening snapshot", err)
		}
	}
	if loaded == 0 {
		entries, err := os.ReadDir(*dir)
		if err != nil {
			fatal(logger, "reading wrapper directory", err)
		}
		for _, ent := range entries {
			if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".json") {
				continue
			}
			name := strings.TrimSuffix(ent.Name(), ".json")
			if !reg.Owns(name) {
				skipped++
				continue
			}
			data, err := os.ReadFile(filepath.Join(*dir, ent.Name()))
			if err != nil {
				fatal(logger, "reading "+ent.Name(), err)
			}
			if err := reg.Add(name, data); err != nil {
				fatal(logger, "loading wrapper", err)
			}
			loaded++
		}
	}
	if loaded == 0 {
		logger.Error("no wrapper files found", "dir", *dir, "skipped_other_shards", skipped)
		os.Exit(1)
	}
	if *snapshotSave != "" {
		f, err := os.Create(*snapshotSave)
		if err != nil {
			fatal(logger, "creating snapshot file", err)
		}
		if err := reg.SaveSnapshot(f); err != nil {
			f.Close()
			fatal(logger, "writing snapshot", err)
		}
		if err := f.Close(); err != nil {
			fatal(logger, "closing snapshot file", err)
		}
		logger.Info("saved snapshot", "path", *snapshotSave, "engines", loaded)
	}

	reg.Metrics().Registry().Publish("mse")
	mux := http.NewServeMux()
	mux.Handle("/", reg.Handler())
	if *withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/debug/vars", expvar.Handler())
	}

	shardIdx, shardTotal, sharded := reg.ShardInfo()
	logger.Info("listening",
		"addr", *addr, "engines", loaded, "skipped_other_shards", skipped,
		"names", strings.Join(reg.Names(), ","), "pprof", *withPprof,
		"cache_bytes", *cacheBytes, "sharded", sharded,
		"shard", shardIdx, "shards", shardTotal)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := serve.NewServer(*addr, mux)
	if err := serve.Run(ctx, srv, serve.RunConfig{
		Logger:       logger,
		DrainTimeout: *drain,
		InFlight:     reg.Metrics().InFlight,
	}); err != nil {
		fatal(logger, "server", err)
	}
}

// parseShard parses the -shard "k/N" form (0 <= k < N, N >= 1).
func parseShard(spec string) (k, n int, err error) {
	k, n = -1, -1
	if _, err := fmt.Sscanf(spec, "%d/%d", &k, &n); err != nil {
		return 0, 0, fmt.Errorf("want \"k/N\", got %q", spec)
	}
	if n < 1 || k < 0 || k >= n {
		return 0, 0, fmt.Errorf("shard %d/%d out of range (want 0 <= k < N)", k, n)
	}
	return k, n, nil
}

func fatal(logger *slog.Logger, msg string, err error) {
	logger.Error(msg, "err", err)
	os.Exit(1)
}
