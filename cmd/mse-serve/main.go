// Command mse-serve runs an extraction service over stored MSE wrappers —
// the deployment shape of the paper's metasearch application.
//
// Usage:
//
//	mse-serve -addr :8080 -wrappers dir/
//
// Every *.json file in the wrappers directory is loaded as one engine
// wrapper named after the file (sans extension).  Endpoints:
//
//	GET  /healthz
//	GET  /engines
//	POST /extract?engine=NAME&q=term+term   (body: result page HTML)
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"mse/internal/core"
	"mse/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("wrappers", "wrappers", "directory of <engine>.json wrapper files")
	flag.Parse()

	reg := serve.NewRegistry(core.DefaultOptions())
	entries, err := os.ReadDir(*dir)
	if err != nil {
		log.Fatalf("mse-serve: reading %s: %v", *dir, err)
	}
	loaded := 0
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(*dir, ent.Name()))
		if err != nil {
			log.Fatalf("mse-serve: reading %s: %v", ent.Name(), err)
		}
		name := strings.TrimSuffix(ent.Name(), ".json")
		if err := reg.Add(name, data); err != nil {
			log.Fatalf("mse-serve: %v", err)
		}
		loaded++
	}
	if loaded == 0 {
		log.Fatalf("mse-serve: no wrapper files in %s", *dir)
	}
	fmt.Printf("mse-serve: %d engines loaded (%s); listening on %s\n",
		loaded, strings.Join(reg.Names(), ", "), *addr)
	log.Fatal(http.ListenAndServe(*addr, reg.Handler()))
}
