package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"mse/internal/core"
	"mse/internal/synth"
)

// TestServeSmoke builds the real binary and drives it end to end: train a
// wrapper to disk, start mse-serve with the JSON access log and the
// wide-event journal enabled, serve pages, and strict-parse everything
// observability produces — /metrics, /driftz, the journal file and the
// stderr log lines must all be well-formed JSON.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	dir := t.TempDir()

	// Train one wrapper and store it the way mse-build would.
	e := synth.NewEngine(55, 3, true)
	var samples []*core.SamplePage
	for q := 0; q < 5; q++ {
		gp := e.Page(q)
		samples = append(samples, &core.SamplePage{HTML: gp.HTML, Query: gp.Query})
	}
	ew, err := core.BuildWrapper(samples, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(ew)
	if err != nil {
		t.Fatal(err)
	}
	wrapperDir := filepath.Join(dir, "wrappers")
	if err := os.MkdirAll(wrapperDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(wrapperDir, "demo.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}

	bin := filepath.Join(dir, "mse-serve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Reserve an ephemeral port; close the listener just before handing the
	// address to the binary.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	journal := filepath.Join(dir, "journal.jsonl")
	logFile, err := os.Create(filepath.Join(dir, "stderr.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer logFile.Close()
	cmd := exec.Command(bin,
		"-addr", addr,
		"-wrappers", wrapperDir,
		"-log-format", "json",
		"-journal", journal,
		"-journal-sample", "1",
		"-drift-window", "12",
		"-relearn",
		"-relearn-min-pages", "4",
		"-relearn-backoff", "100ms",
		"-drain", "5s",
	)
	cmd.Stderr = logFile
	cmd.Stdout = logFile
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	base := "http://" + addr
	client := &http.Client{Timeout: 5 * time.Second}
	ok := false
	for i := 0; i < 100; i++ {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !ok {
		t.Fatalf("server did not come up on %s", addr)
	}

	const pages = 8
	for q := 0; q < pages; q++ {
		gp := e.Page(q)
		resp, err := client.Post(
			fmt.Sprintf("%s/extract?engine=demo&q=%s", base, strings.Join(gp.Query, "+")),
			"text/html", strings.NewReader(gp.HTML))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("extract page %d: status %d\n%s", q, resp.StatusCode, body)
		}
		if rid := resp.Header.Get("X-Request-ID"); rid == "" {
			t.Fatalf("extract page %d: no X-Request-ID echoed", q)
		}
	}

	// /metrics must parse and carry the quality gauges and percentiles.
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var metrics struct {
		Metrics struct {
			Counters   map[string]int64           `json:"counters"`
			Gauges     map[string]int64           `json:"gauges"`
			Histograms map[string]json.RawMessage `json:"histograms"`
		} `json:"metrics"`
		Relearn *struct {
			Enabled        bool  `json:"enabled"`
			ReservoirPages int64 `json:"reservoir_pages"`
		} `json:"relearn"`
	}
	if err := json.Unmarshal(metricsBody, &metrics); err != nil {
		t.Fatalf("/metrics malformed: %v\n%s", err, metricsBody)
	}
	if _, ok := metrics.Metrics.Gauges["engine.demo.quality.verdict"]; !ok {
		t.Fatalf("/metrics missing engine.demo.quality.verdict:\n%s", metricsBody)
	}
	lat, ok := metrics.Metrics.Histograms["engine.demo.latency"]
	if !ok {
		t.Fatalf("/metrics missing engine.demo.latency:\n%s", metricsBody)
	}
	for _, q := range []string{"p50_ms", "p90_ms", "p99_ms"} {
		if !strings.Contains(string(lat), q) {
			t.Fatalf("latency histogram missing %s:\n%s", q, lat)
		}
	}
	for _, c := range []string{
		"relearn.jobs_total", "relearn.failures_total", "relearn.canary_rejects_total",
		"relearn.swaps_total", "relearn.circuit_open_total",
	} {
		if _, ok := metrics.Metrics.Counters[c]; !ok {
			t.Fatalf("/metrics missing counter %s:\n%s", c, metricsBody)
		}
	}
	if metrics.Relearn == nil || !metrics.Relearn.Enabled {
		t.Fatalf("/metrics relearn block missing or disabled under -relearn:\n%s", metricsBody)
	}
	if metrics.Relearn.ReservoirPages != pages {
		t.Fatalf("/metrics relearn reservoir_pages = %d, want %d (every served page sampled)",
			metrics.Relearn.ReservoirPages, pages)
	}

	// /relearnz must parse and report the sampled engine as healthy.
	resp, err = client.Get(base + "/relearnz")
	if err != nil {
		t.Fatal(err)
	}
	relearnBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var relearnz struct {
		Enabled bool `json:"enabled"`
		Engines []struct {
			Engine         string `json:"engine"`
			State          string `json:"state"`
			ReservoirPages int    `json:"reservoir_pages"`
		} `json:"engines"`
	}
	if err := json.Unmarshal(relearnBody, &relearnz); err != nil {
		t.Fatalf("/relearnz malformed: %v\n%s", err, relearnBody)
	}
	if !relearnz.Enabled || len(relearnz.Engines) != 1 ||
		relearnz.Engines[0].Engine != "demo" || relearnz.Engines[0].State != "IDLE" ||
		relearnz.Engines[0].ReservoirPages != pages {
		t.Fatalf("/relearnz unexpected: %s", relearnBody)
	}

	// /driftz must parse and report the engine.
	resp, err = client.Get(base + "/driftz")
	if err != nil {
		t.Fatal(err)
	}
	driftBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var report struct {
		Engines []struct {
			Engine  string `json:"engine"`
			Verdict string `json:"verdict"`
			Pages   int64  `json:"pages"`
		} `json:"engines"`
	}
	if err := json.Unmarshal(driftBody, &report); err != nil {
		t.Fatalf("/driftz malformed: %v\n%s", err, driftBody)
	}
	if len(report.Engines) != 1 || report.Engines[0].Engine != "demo" ||
		report.Engines[0].Pages != pages || report.Engines[0].Verdict == "" {
		t.Fatalf("/driftz unexpected: %s", driftBody)
	}

	// Clean shutdown so the journal file is fully flushed.
	cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("server did not drain after SIGTERM")
	}

	// Journal: one well-formed JSON line per served page.
	jb, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	jlines := strings.Split(strings.TrimRight(string(jb), "\n"), "\n")
	if len(jlines) != pages {
		t.Fatalf("journal lines = %d, want %d\n%s", len(jlines), pages, jb)
	}
	for i, line := range jlines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("journal line %d malformed: %v\n%s", i, err, line)
		}
		for _, key := range []string{"time", "request_id", "engine", "status", "total_ms"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("journal line %d missing %q: %s", i, key, line)
			}
		}
	}

	// Every stderr line (access log + service log) must be JSON.
	lb, err := os.ReadFile(logFile.Name())
	if err != nil {
		t.Fatal(err)
	}
	llines := strings.Split(strings.TrimRight(string(lb), "\n"), "\n")
	if len(llines) == 0 || llines[0] == "" {
		t.Fatalf("no log output")
	}
	sawAccess := false
	for i, line := range llines {
		var entry map[string]any
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("log line %d not JSON: %v\n%s", i, err, line)
		}
		if entry["msg"] == "request" {
			sawAccess = true
			if rid, _ := entry["request_id"].(string); rid == "" {
				t.Fatalf("access log line missing request_id: %s", line)
			}
		}
	}
	if !sawAccess {
		t.Fatalf("no access-log lines in output:\n%s", lb)
	}
}
