// Command mse-synth materializes the synthetic search-engine test bed to
// disk: one directory per engine with its result pages and ground truth.
//
// Usage:
//
//	mse-synth -dir testbed -engines 119 -multi 38 -queries 10 -seed 2006
//
// Each engine directory contains pageN.html, pageN.query (query terms,
// one per line) and pageN.truth.json (the ground truth).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mse/internal/synth"
)

func main() {
	dir := flag.String("dir", "testbed", "output directory")
	engines := flag.Int("engines", 119, "number of engines")
	multi := flag.Int("multi", 38, "number of multi-section engines")
	queries := flag.Int("queries", 10, "result pages per engine")
	seed := flag.Int64("seed", 2006, "master seed")
	flag.Parse()

	cfg := synth.Config{Seed: *seed, Engines: *engines, MultiSection: *multi, Queries: *queries}
	bed := synth.GenerateTestbed(cfg)
	pages := 0
	for _, e := range bed {
		edir := filepath.Join(*dir, fmt.Sprintf("engine%03d", e.ID))
		if err := os.MkdirAll(edir, 0o755); err != nil {
			fatal("creating %s: %v", edir, err)
		}
		for q := 0; q < cfg.Queries; q++ {
			gp := e.Page(q)
			base := filepath.Join(edir, fmt.Sprintf("page%d", q))
			if err := os.WriteFile(base+".html", []byte(gp.HTML), 0o644); err != nil {
				fatal("writing page: %v", err)
			}
			if err := os.WriteFile(base+".query",
				[]byte(strings.Join(gp.Query, "\n")+"\n"), 0o644); err != nil {
				fatal("writing query: %v", err)
			}
			truth, err := json.MarshalIndent(gp.Truth, "", "  ")
			if err != nil {
				fatal("encoding truth: %v", err)
			}
			if err := os.WriteFile(base+".truth.json", truth, 0o644); err != nil {
				fatal("writing truth: %v", err)
			}
			pages++
		}
	}
	fmt.Printf("wrote %d engines (%d pages) under %s\n", len(bed), pages, *dir)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mse-synth: "+format+"\n", args...)
	os.Exit(1)
}
