// Command mse-loadgen replays a declarative scenario against a live
// mse-serve, continuously scoring every extraction against synthetic
// ground truth.
//
// Usage:
//
//	mse-loadgen -scenario FILE -write-wrappers DIR
//	mse-loadgen -scenario FILE -target URL [-rate N] [-concurrency N]
//	            [-duration D] [-window N] [-report PATH] [-events PATH]
//
// A scenario (see internal/scenario) declares the engine population with
// its difficulty features, the traffic mix, a drift schedule of template
// cutovers over virtual time, and pass/fail thresholds.
//
// The two invocations are the offline and online halves of a run:
// -write-wrappers trains one wrapper per engine from its pre-drift
// template and writes <engine>.json files for mse-serve to load;
// -target then replays the scenario's traffic, polls the server's drift
// and relearn reports at the phase barriers, and writes a final JSON
// report with per-engine recall/precision/empty-rate time series.
//
// The run is deterministic given the scenario seed: at -concurrency 1
// two runs against identically configured servers produce identical
// event sequences, schedule digests and scores.  Exit status: 0 when
// every threshold holds, 1 on a threshold breach or failed run, 2 on
// usage errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"mse/internal/core"
	"mse/internal/scenario"
)

func main() {
	scenarioPath := flag.String("scenario", "", "scenario JSON file (required)")
	writeWrappers := flag.String("write-wrappers", "",
		"train wrappers from the scenario's pre-drift templates, write <engine>.json files to this directory, and exit")
	target := flag.String("target", "", "mse-serve base URL, e.g. http://localhost:8080")
	rate := flag.Float64("rate", 0, "request rate cap per second (0 = unthrottled)")
	concurrency := flag.Int("concurrency", 1,
		"in-flight requests per wave (1 guarantees a reproducible run)")
	duration := flag.Duration("duration", 0,
		"wall-clock cap for the whole run; a truncated run fails (0 = no cap)")
	window := flag.Int("window", 20, "score time-series window in pages per engine")
	reportPath := flag.String("report", "", "write the final JSON report to this file (default stdout)")
	eventsPath := flag.String("events", "", "write canonical event lines to this file")
	flag.Parse()

	if *scenarioPath == "" {
		usageErr("missing -scenario")
	}
	for _, c := range []struct {
		ok   bool
		flag string
		why  string
	}{
		{*rate >= 0, "-rate", "must be >= 0 (0 = unthrottled)"},
		{*concurrency >= 1, "-concurrency", "must be >= 1"},
		{*duration >= 0, "-duration", "must be >= 0 (0 = no cap)"},
		{*window >= 1, "-window", "must be >= 1"},
	} {
		if !c.ok {
			usageErr(fmt.Sprintf("invalid %s: %s", c.flag, c.why))
		}
	}

	cfg, err := scenario.Load(*scenarioPath)
	if err != nil {
		fatal(err)
	}

	if *writeWrappers != "" {
		if err := trainAndWrite(cfg, *writeWrappers); err != nil {
			fatal(err)
		}
		return
	}

	if *target == "" {
		usageErr("missing -target (or -write-wrappers)")
	}
	opts := scenario.RunOpts{
		Target:      *target,
		Rate:        *rate,
		Concurrency: *concurrency,
		MaxDuration: *duration,
		Window:      *window,
	}
	if *eventsPath != "" {
		f, err := os.Create(*eventsPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		opts.Events = f
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, runErr := scenario.Run(ctx, cfg, opts)
	if rep != nil {
		if err := writeReport(rep, *reportPath); err != nil {
			fatal(err)
		}
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "mse-loadgen: run failed: %v\n", runErr)
		os.Exit(1)
	}
	if !rep.Passed() {
		for _, b := range rep.Breaches {
			fmt.Fprintf(os.Stderr, "mse-loadgen: threshold breach: %s\n", b)
		}
		os.Exit(1)
	}
}

// trainAndWrite runs the offline half: wrapper induction from each
// engine's pre-drift template.
func trainAndWrite(cfg *scenario.Config, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	wrappers, err := scenario.TrainWrappers(cfg, core.DefaultOptions())
	if err != nil {
		return err
	}
	for name, data := range wrappers {
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "mse-loadgen: wrote %d wrappers to %s\n", len(wrappers), dir)
	return nil
}

func writeReport(rep *scenario.Report, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func usageErr(msg string) {
	fmt.Fprintf(os.Stderr, "mse-loadgen: %s\n", msg)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mse-loadgen: %v\n", err)
	os.Exit(1)
}
