package main

import (
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestLoadgenSmoke builds the real mse-serve and mse-loadgen binaries and
// runs the committed drift-heal example end to end over a real socket:
// train wrappers with -write-wrappers, start mse-serve -relearn, replay
// the scenario, and require exit 0 with a passing report whose series
// carries the drop-and-recover curve.
func TestLoadgenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs both binaries")
	}
	dir := t.TempDir()
	scenarioPath := filepath.Join("..", "..", "examples", "scenarios", "drift-heal.json")

	loadgen := filepath.Join(dir, "mse-loadgen")
	if out, err := exec.Command("go", "build", "-o", loadgen, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build mse-loadgen: %v\n%s", err, out)
	}
	servebin := filepath.Join(dir, "mse-serve")
	if out, err := exec.Command("go", "build", "-o", servebin, "../mse-serve").CombinedOutput(); err != nil {
		t.Fatalf("go build mse-serve: %v\n%s", err, out)
	}

	// Usage errors must exit 2 before any work happens.
	cmd := exec.Command(loadgen, "-scenario", scenarioPath, "-target", "http://x", "-concurrency", "0")
	if out, err := cmd.CombinedOutput(); err == nil || cmd.ProcessState.ExitCode() != 2 {
		t.Fatalf("-concurrency 0: exit %d, want 2\n%s", cmd.ProcessState.ExitCode(), out)
	} else if !strings.Contains(string(out), "-concurrency") {
		t.Fatalf("-concurrency 0: error does not name the flag:\n%s", out)
	}

	// Offline half: train wrappers from the scenario's pre-drift templates.
	wrapperDir := filepath.Join(dir, "wrappers")
	if out, err := exec.Command(loadgen,
		"-scenario", scenarioPath, "-write-wrappers", wrapperDir).CombinedOutput(); err != nil {
		t.Fatalf("write-wrappers: %v\n%s", err, out)
	}
	if _, err := os.Stat(filepath.Join(wrapperDir, "beta.json")); err != nil {
		t.Fatalf("wrapper not written: %v", err)
	}

	// Online half: mse-serve with self-healing on fast test tunings.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	server := exec.Command(servebin,
		"-addr", addr,
		"-wrappers", wrapperDir,
		"-quiet",
		"-drift-window", "8",
		"-relearn",
		"-relearn-min-pages", "4",
		"-relearn-train-pages", "5",
		"-relearn-holdout-pages", "2",
		"-relearn-backoff", "100ms",
		"-drain", "5s",
	)
	serverLog, err := os.Create(filepath.Join(dir, "serve.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer serverLog.Close()
	server.Stdout, server.Stderr = serverLog, serverLog
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		server.Process.Kill()
		server.Wait()
	}()
	base := "http://" + addr
	client := &http.Client{Timeout: 5 * time.Second}
	up := false
	for i := 0; i < 100; i++ {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			up = resp.StatusCode == http.StatusOK
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !up {
		t.Fatalf("mse-serve did not come up on %s", addr)
	}

	reportPath := filepath.Join(dir, "report.json")
	eventsPath := filepath.Join(dir, "events.log")
	run := exec.Command(loadgen,
		"-scenario", scenarioPath,
		"-target", base,
		"-report", reportPath,
		"-events", eventsPath,
		"-duration", "2m",
	)
	if out, err := run.CombinedOutput(); err != nil {
		logs, _ := os.ReadFile(serverLog.Name())
		t.Fatalf("loadgen run: %v\n%s\nserver log:\n%s", err, out, logs)
	}

	var rep struct {
		Scenario string `json:"scenario"`
		Digest   string `json:"digest"`
		Non2xx   int    `json:"non_2xx"`
		Breaches []string
		Phases   []struct {
			Name    string `json:"name"`
			Outcome string `json:"outcome"`
		} `json:"phases"`
		Series []struct {
			Phase        string  `json:"phase"`
			RecordRecall float64 `json:"record_recall"`
		} `json:"series"`
	}
	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report malformed: %v\n%s", err, data)
	}
	if rep.Scenario != "drift-heal" || len(rep.Digest) != 64 {
		t.Fatalf("report header unexpected: %s", data)
	}
	if rep.Non2xx != 0 || len(rep.Breaches) != 0 {
		t.Fatalf("non_2xx=%d breaches=%v, want clean run\n%s", rep.Non2xx, rep.Breaches, data)
	}
	outcomes := map[string]string{}
	for _, p := range rep.Phases {
		outcomes[p.Name] = p.Outcome
	}
	if outcomes["drift"] != "drift detected" || outcomes["heal"] != "swap observed" {
		t.Fatalf("phase outcomes %v, want drift detected + swap observed", outcomes)
	}
	sawDrop, sawRecover := false, false
	for _, tp := range rep.Series {
		if tp.Phase == "drift" && tp.RecordRecall < 0.5 {
			sawDrop = true
		}
		if tp.Phase == "recovered" && tp.RecordRecall >= 0.9 {
			sawRecover = true
		}
	}
	if !sawDrop || !sawRecover {
		t.Fatalf("series missing drop (%v) or recovery (%v):\n%s", sawDrop, sawRecover, data)
	}

	// The event log carries one canonical line per request.
	ev, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(ev), "\n"), "\n")
	if len(lines) < 40 {
		t.Fatalf("event log has %d lines, want one per request (>=40)", len(lines))
	}
}
