// Command mse-bench regenerates every quantitative result of the paper's
// evaluation (Section 6) over the synthetic test bed, plus the ablations
// and baseline comparisons indexed in DESIGN.md.
//
// Usage:
//
//	mse-bench [-table 1|2|3|stats|timing|ablation|baseline|all] [-seed 2006]
//	          [-engines 119] [-multi 38] [-trace] [-parallelism N]
//	          [-no-tree-cache]
//
// With -trace, a per-stage time breakdown of wrapper construction and
// extraction (aggregated over the first ten engines) is appended —
// together with the tree-distance cache counters and the effective worker
// count — so a benchmark regression can be attributed to a specific
// pipeline step.  -parallelism sets the pipeline worker count (0 =
// GOMAXPROCS); -no-tree-cache disables tree-distance memoization and runs
// the original uncached reference path.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mse/internal/baseline"
	"mse/internal/core"
	"mse/internal/editdist"
	"mse/internal/eval"
	"mse/internal/obs"
	"mse/internal/par"
	"mse/internal/synth"
)

// parallelism is the -parallelism flag: the worker count handed to every
// pipeline run (0 = GOMAXPROCS).
var parallelism int

// benchOpts is core.DefaultOptions with the command-line parallelism
// applied; every pipeline invocation in this command goes through it.
func benchOpts() core.Options {
	opt := core.DefaultOptions()
	opt.Parallelism = parallelism
	return opt
}

func main() {
	table := flag.String("table", "all", "which result to regenerate: 1, 2, 3, stats, timing, ablation, baseline, all")
	seed := flag.Int64("seed", 2006, "test bed master seed")
	engines := flag.Int("engines", 119, "number of engines")
	multi := flag.Int("multi", 38, "number of multi-section engines")
	trace := flag.Bool("trace", false, "append the per-stage pipeline time breakdown")
	flag.IntVar(&parallelism, "parallelism", 0, "pipeline worker count (0 = GOMAXPROCS)")
	cacheOff := flag.Bool("no-tree-cache", false, "disable tree-distance memoization (reference path)")
	flag.Parse()
	if *cacheOff {
		editdist.SetCacheEnabled(false)
	}

	cfg := synth.Config{Seed: *seed, Engines: *engines, MultiSection: *multi, Queries: 10}
	bed := synth.GenerateTestbed(cfg)

	mseExtractor := func() eval.Extractor { return eval.NewMSE(benchOpts()) }
	run := func(multiOnly bool, newEx func() eval.Extractor) eval.Result {
		return eval.Run(bed, eval.RunConfig{
			SampleCount: 5, PageCount: 10, MultiOnly: multiOnly, NewExtractor: newEx,
		})
	}

	switch *table {
	case "styles":
		printStyleBreakdown(bed)
	case "1":
		printSectionTable("Table 1: section extraction on all engines", run(false, mseExtractor))
	case "2":
		printSectionTable("Table 2: section extraction on multi-section engines", run(true, mseExtractor))
	case "3":
		printRecordTable("Table 3: record extraction within correct sections", run(false, mseExtractor))
	case "stats":
		printStats(bed)
	case "timing":
		printTiming(bed)
	case "ablation":
		printAblations(bed)
	case "baseline":
		printBaselines(bed)
	case "all":
		res := run(false, mseExtractor)
		printSectionTable("Table 1: section extraction on all engines", res)
		printSectionTable("Table 2: section extraction on multi-section engines", run(true, mseExtractor))
		printRecordTable("Table 3: record extraction within correct sections", res)
		printStats(bed)
		printTiming(bed)
		printStyleBreakdown(bed)
		printAblations(bed)
		printBaselines(bed)
	default:
		fmt.Fprintf(os.Stderr, "mse-bench: unknown table %q\n", *table)
		os.Exit(2)
	}
	if *trace {
		printTrace(bed)
	}
}

// printTrace runs traced wrapper construction and extraction over the
// first ten engines and prints the merged per-stage breakdown, the
// attribution tool the BENCH trajectory uses to pin a regression on one
// pipeline step.
func printTrace(bed []*synth.Engine) {
	n := 10
	if n > len(bed) {
		n = len(bed)
	}
	opt := benchOpts()
	opt.Obs = obs.NewTracer()
	cs0 := editdist.Stats()
	for _, e := range bed[:n] {
		var samples []*core.SamplePage
		for q := 0; q < 5; q++ {
			gp := e.Page(q)
			samples = append(samples, &core.SamplePage{HTML: gp.HTML, Query: gp.Query})
		}
		ew, err := core.BuildWrapper(samples, opt)
		if err != nil {
			continue
		}
		for q := 5; q < 10; q++ {
			gp := e.Page(q)
			ew.Extract(gp.HTML, gp.Query)
		}
	}
	var builds, extracts []*obs.SpanSnapshot
	for _, snap := range opt.Obs.Snapshot() {
		switch snap.Name {
		case obs.RootBuildWrapper:
			builds = append(builds, snap)
		case obs.RootExtract:
			extracts = append(extracts, snap)
		}
	}
	fmt.Printf("\nPer-stage time breakdown (%d engines, 5 samples + 5 extractions each)\n", n)
	if b := obs.Merge(builds); b != nil {
		fmt.Printf("\n%s", b.Format())
	}
	if x := obs.Merge(extracts); x != nil {
		fmt.Printf("\n%s", x.Format())
	}
	cs := editdist.Stats().Sub(cs0)
	fmt.Printf("\nparallelism: %d workers (flag %d; 0 = GOMAXPROCS)\n", par.Workers(parallelism), parallelism)
	fmt.Printf("tree-distance cache: enabled=%v lookups=%d identical=%d hits=%d misses=%d early-exits=%d evictions=%d entries=%d hit-rate=%.1f%%\n",
		editdist.CacheEnabled(), cs.Lookups, cs.Identical, cs.Hits, cs.Misses,
		cs.EarlyExits, cs.Evictions, cs.Entries, 100*cs.HitRate())
}

func printSectionTable(title string, res eval.Result) {
	fmt.Printf("\n%s\n%s\n", title, eval.Header())
	for _, row := range res.Rows() {
		fmt.Println(row.Format())
	}
}

func printRecordTable(title string, res eval.Result) {
	fmt.Printf("\n%s\n%s\n", title, eval.RecordHeader())
	for _, row := range res.Rows() {
		fmt.Println(row.RecordFormat())
	}
}

// printStats audits the test bed statistics the paper reports in §1-2:
// the fraction of multi-section engines and the SBM coverage.
func printStats(bed []*synth.Engine) {
	multi, total, withLBM, sections := 0, 0, 0, 0
	for _, e := range bed {
		total++
		if e.MultiSection() {
			multi++
		}
		for _, ss := range e.Schema.Sections {
			sections++
			if ss.HasLBM {
				withLBM++
			}
		}
	}
	fmt.Printf("\nTest bed statistics\n")
	fmt.Printf("engines: %d, multi-section: %d (%.1f%%; paper: 19/100 in dataset 2, 38/119 overall)\n",
		total, multi, 100*float64(multi)/float64(total))
	fmt.Printf("sections with explicit boundary markers: %d/%d = %.1f%% (paper: 96.9%%)\n",
		withLBM, sections, 100*float64(withLBM)/float64(sections))
}

// printTiming reproduces the §6 timing claims: wrapper construction from 5
// sample pages, and per-page extraction once the wrapper exists.
func printTiming(bed []*synth.Engine) {
	n := 10
	if n > len(bed) {
		n = len(bed)
	}
	var buildTotal, extractTotal time.Duration
	extractions := 0
	for _, e := range bed[:n] {
		var samples []*core.SamplePage
		for q := 0; q < 5; q++ {
			gp := e.Page(q)
			samples = append(samples, &core.SamplePage{HTML: gp.HTML, Query: gp.Query})
		}
		start := time.Now()
		ew, err := core.BuildWrapper(samples, benchOpts())
		if err != nil {
			continue
		}
		buildTotal += time.Since(start)
		for q := 5; q < 10; q++ {
			gp := e.Page(q)
			start = time.Now()
			ew.Extract(gp.HTML, gp.Query)
			extractTotal += time.Since(start)
			extractions++
		}
	}
	fmt.Printf("\nTiming (paper: 20-50 s wrapper construction on a 1.3 GHz Pentium M; extraction \"a small fraction of a second\")\n")
	fmt.Printf("wrapper construction (5 samples): %v per engine\n", buildTotal/time.Duration(n))
	fmt.Printf("extraction: %v per page\n", extractTotal/time.Duration(extractions))
}

// printStyleBreakdown reports extraction quality per page-layout idiom —
// the error analysis dimension §6 discusses qualitatively.
func printStyleBreakdown(bed []*synth.Engine) {
	type bucket struct {
		name   string
		filter func(*synth.Engine) bool
	}
	buckets := []bucket{
		{"table", func(e *synth.Engine) bool { return e.Schema.Style == synth.TableStyle && !e.Schema.Flat }},
		{"table-flat", func(e *synth.Engine) bool { return e.Schema.Flat }},
		{"div", func(e *synth.Engine) bool { return e.Schema.Style == synth.DivStyle }},
		{"list", func(e *synth.Engine) bool { return e.Schema.Style == synth.ListStyle }},
		{"dl", func(e *synth.Engine) bool { return e.Schema.Style == synth.DlStyle }},
	}
	fmt.Printf("\nBreakdown by layout style\n")
	fmt.Printf("%-12s %8s %8s %8s %8s\n", "style", "engines", "R-Perf%", "R-Tot%", "P-Tot%")
	for _, b := range buckets {
		var subset []*synth.Engine
		for _, e := range bed {
			if b.filter(e) {
				subset = append(subset, e)
			}
		}
		if len(subset) == 0 {
			continue
		}
		res := eval.Run(subset, eval.RunConfig{
			SampleCount: 5, PageCount: 10,
			NewExtractor: func() eval.Extractor { return eval.NewMSE(benchOpts()) },
		})
		tt := res.Total()
		fmt.Printf("%-12s %8d %8.1f %8.1f %8.1f\n", b.name, len(subset),
			100*tt.RecallPerfect(), 100*tt.RecallTotal(), 100*tt.PrecisionTotal())
	}
}

// printAblations quantifies each pipeline stage's contribution.
func printAblations(bed []*synth.Engine) {
	variants := []struct {
		name string
		opt  core.Options
	}{
		{"full MSE", benchOpts()},
		{"no refinement (step 4)", func() core.Options { o := benchOpts(); o.DisableRefine = true; return o }()},
		{"no granularity (step 6)", func() core.Options { o := benchOpts(); o.DisableGranularity = true; return o }()},
		{"no families (step 9)", func() core.Options { o := benchOpts(); o.DisableFamilies = true; return o }()},
	}
	fmt.Printf("\nAblation A: pipeline components (multi-section engines)\n")
	fmt.Printf("%-26s %8s %8s %8s %8s\n", "variant", "R-Perf%", "R-Tot%", "P-Perf%", "P-Tot%")
	for _, v := range variants {
		opt := v.opt
		res := eval.Run(bed, eval.RunConfig{
			SampleCount: 5, PageCount: 10, MultiOnly: true,
			NewExtractor: func() eval.Extractor { return eval.NewMSE(opt) },
		})
		tt := res.Total()
		fmt.Printf("%-26s %8.1f %8.1f %8.1f %8.1f\n", v.name,
			100*tt.RecallPerfect(), 100*tt.RecallTotal(),
			100*tt.PrecisionPerfect(), 100*tt.PrecisionTotal())
	}

	// Ablation B: section families, evaluated only on engines where a
	// section schema is absent from every sample page (hidden sections).
	var hidden []*synth.Engine
	for _, e := range bed {
		seen := map[int]bool{}
		for q := 0; q < 5; q++ {
			for _, s := range e.Page(q).Truth.Sections {
				seen[s.SchemaIndex] = true
			}
		}
	scan:
		for q := 5; q < 10; q++ {
			for _, s := range e.Page(q).Truth.Sections {
				if !seen[s.SchemaIndex] {
					hidden = append(hidden, e)
					break scan
				}
			}
		}
	}
	fmt.Printf("\nAblation B: section families on the %d hidden-section engines\n", len(hidden))
	if len(hidden) > 0 {
		fmt.Printf("%-14s %8s %8s\n", "variant", "R-Tot%", "P-Tot%")
		for _, v := range []struct {
			name string
			opt  core.Options
		}{
			{"families-on", benchOpts()},
			{"families-off", func() core.Options { o := benchOpts(); o.DisableFamilies = true; return o }()},
		} {
			opt := v.opt
			res := eval.Run(hidden, eval.RunConfig{
				SampleCount: 5, PageCount: 10,
				NewExtractor: func() eval.Extractor { return eval.NewMSE(opt) },
			})
			tt := res.Total()
			fmt.Printf("%-14s %8.1f %8.1f\n", v.name,
				100*tt.RecallTotal(), 100*tt.PrecisionTotal())
		}
	}

	fmt.Printf("\nAblation C: W parameter sweep (paper uses W=1.8; multi-section engines)\n")
	fmt.Printf("%-8s %8s %8s\n", "W", "R-Tot%", "P-Tot%")
	for _, wv := range []float64{1.0, 1.4, 1.8, 2.2, 3.0} {
		opt := benchOpts()
		opt.Refine.W = wv
		opt.Granularity.W = wv
		res := eval.Run(bed, eval.RunConfig{
			SampleCount: 5, PageCount: 10, MultiOnly: true,
			NewExtractor: func() eval.Extractor { return eval.NewMSE(opt) },
		})
		tt := res.Total()
		fmt.Printf("%-8.1f %8.1f %8.1f\n", wv, 100*tt.RecallTotal(), 100*tt.PrecisionTotal())
	}

	fmt.Printf("\nAblation D: sample page count (all engines)\n")
	fmt.Printf("%-8s %8s %8s\n", "samples", "R-Tot%", "P-Tot%")
	for _, n := range []int{2, 3, 4, 5} {
		res := eval.Run(bed, eval.RunConfig{
			SampleCount: n, PageCount: 10,
			NewExtractor: func() eval.Extractor { return eval.NewMSE(benchOpts()) },
		})
		tt := res.Total()
		fmt.Printf("%-8d %8.1f %8.1f\n", n, 100*tt.RecallTotal(), 100*tt.PrecisionTotal())
	}
}

// printBaselines compares MSE against the related-work systems of §7.
func printBaselines(bed []*synth.Engine) {
	systems := []struct {
		name  string
		newEx func() eval.Extractor
	}{
		{"MSE", func() eval.Extractor { return eval.NewMSE(benchOpts()) }},
		{"MDR-style", func() eval.Extractor { return baseline.NewMDR() }},
		{"ViNTs-single", func() eval.Extractor { return baseline.NewSingleSection() }},
	}
	fmt.Printf("\nBaselines on multi-section engines\n")
	fmt.Printf("%-14s %8s %8s %10s %10s\n", "system", "R-Tot%", "P-Tot%", "RecRec%", "RecPrec%")
	for _, sys := range systems {
		res := eval.Run(bed, eval.RunConfig{
			SampleCount: 5, PageCount: 10, MultiOnly: true, NewExtractor: sys.newEx,
		})
		tt := res.Total()
		fmt.Printf("%-14s %8.1f %8.1f %10.1f %10.1f\n", sys.name,
			100*tt.RecallTotal(), 100*tt.PrecisionTotal(),
			100*tt.RecordRecall(), 100*tt.RecordPrecision())
	}
}
