// Command mse-inspect prints the intermediate artifacts of the MSE
// pipeline for one or more result pages: the rendered content lines (Step
// 1), the multi-record sections MRE finds (Step 2), and — when two or more
// pages are given — the candidate section boundary markers and dynamic
// sections of DSE (Step 3) plus the refined sections (Steps 4-6).  It is
// the tool to reach for when a wrapper misbehaves on an engine.
//
// Usage:
//
//	mse-inspect [-mode lines|dom|mrs|sections] page.html[:term+term...] ...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mse/internal/core"
	"mse/internal/dom"
	"mse/internal/dse"
	"mse/internal/htmlparse"
	"mse/internal/layout"
	"mse/internal/mre"
)

func main() {
	mode := flag.String("mode", "sections", "what to print: lines, dom, mrs, sections")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr,
			"usage: mse-inspect [-mode lines|dom|mrs|sections] page.html[:term+term...] ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	type input struct {
		path  string
		page  *layout.Page
		query []string
	}
	var inputs []input
	for _, arg := range flag.Args() {
		path, queryPart, _ := strings.Cut(arg, ":")
		data, err := os.ReadFile(path)
		if err != nil {
			fatal("reading %s: %v", path, err)
		}
		var query []string
		if queryPart != "" {
			query = strings.Split(queryPart, "+")
		}
		inputs = append(inputs, input{
			path:  path,
			page:  layout.Render(htmlparse.Parse(string(data))),
			query: query,
		})
	}

	switch *mode {
	case "lines":
		for _, in := range inputs {
			fmt.Printf("== %s: %d content lines\n", in.path, len(in.page.Lines))
			printLines(in.page, nil)
		}
	case "dom":
		for _, in := range inputs {
			fmt.Printf("== %s\n", in.path)
			printDOM(in.page.Doc, 0)
		}
	case "mrs":
		for _, in := range inputs {
			fmt.Printf("== %s\n", in.path)
			for _, mr := range mre.Extract(in.page, mre.DefaultOptions()) {
				fmt.Printf("MR lines [%d,%d) with %d records\n", mr.Start, mr.End, len(mr.Records))
				for i, r := range mr.Records {
					fmt.Printf("  record %d: lines [%d,%d) %q\n", i+1, r.Start, r.End,
						truncate(strings.ReplaceAll(r.Text(), "\n", " | "), 90))
				}
			}
		}
	case "sections":
		if len(inputs) < 2 {
			fatal("mode 'sections' needs at least two pages (DSE compares pages)")
		}
		var samples []*core.SamplePage
		var dseIns []*dse.PageInput
		for _, in := range inputs {
			samples = append(samples, &core.SamplePage{HTML: "", Query: in.query})
			dseIns = append(dseIns, &dse.PageInput{
				Page: in.page, Query: in.query,
				MRs: mre.Extract(in.page, mre.DefaultOptions()),
			})
		}
		_, marks := dse.Run(dseIns, dse.DefaultOptions())
		// Re-run the full analysis for the refined view.
		for i, in := range inputs {
			data, err := os.ReadFile(in.path)
			if err != nil {
				fatal("re-reading %s: %v", in.path, err)
			}
			samples[i].HTML = string(data)
		}
		pageSections, err := core.AnalyzePages(samples, core.DefaultOptions())
		if err != nil {
			fatal("analysis: %v", err)
		}
		for i, in := range inputs {
			fmt.Printf("== %s\n", in.path)
			fmt.Printf("-- content lines (* = candidate section boundary marker):\n")
			printLines(in.page, marks[i])
			fmt.Printf("-- refined sections:\n")
			for _, s := range pageSections[i].Sections {
				name := s.LBMText()
				if name == "" {
					name = "(no boundary marker)"
				}
				fmt.Printf("  section %q lines [%d,%d) with %d records\n",
					name, s.Start, s.End, len(s.Records))
			}
		}
	default:
		fatal("unknown mode %q", *mode)
	}
}

func printLines(p *layout.Page, marks []bool) {
	for i, l := range p.Lines {
		mark := " "
		if marks != nil && marks[i] {
			mark = "*"
		}
		attrs := ""
		for _, a := range l.Attrs {
			attrs += fmt.Sprintf("[%s %d %s %s]", a.Font, a.Size, styleString(a.Style), a.Color)
		}
		fmt.Printf("%s %3d %-10s x=%-4d %-40s %s\n", mark, i, l.Type, l.X,
			truncate(l.Text, 40), attrs)
	}
}

func styleString(s layout.StyleFlags) string {
	out := ""
	if s&layout.Bold != 0 {
		out += "b"
	}
	if s&layout.Italic != 0 {
		out += "i"
	}
	if s&layout.Underline != 0 {
		out += "u"
	}
	if out == "" {
		out = "-"
	}
	return out
}

func printDOM(n *dom.Node, depth int) {
	indent := strings.Repeat("  ", depth)
	switch n.Type {
	case dom.TextNode:
		t := strings.TrimSpace(n.Data)
		if t != "" {
			fmt.Printf("%s%q\n", indent, truncate(t, 60))
		}
		return
	case dom.CommentNode, dom.DoctypeNode:
		return
	case dom.ElementNode:
		attrs := ""
		for _, a := range n.Attrs {
			attrs += fmt.Sprintf(" %s=%q", a.Key, a.Val)
		}
		fmt.Printf("%s<%s%s>\n", indent, n.Tag, attrs)
	}
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		printDOM(c, depth+1)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mse-inspect: "+format+"\n", args...)
	os.Exit(1)
}
