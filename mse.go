// Package mse is an implementation of MSE (Multiple Section Extraction),
// the wrapper-induction system of
//
//	Hongkun Zhao, Weiyi Meng, Clement Yu.
//	"Automatic Extraction of Dynamic Record Sections From Search Engine
//	Result Pages."  VLDB 2006.
//
// Given a handful of sample result pages from one search engine, MSE
// builds a wrapper that extracts every dynamic section — and the search
// result records (SRRs) inside each section — from any result page of that
// engine, while keeping the section-record relationship.  Section families
// let the wrapper extract hidden sections that never occurred on a sample
// page.
//
// # Quick start
//
//	samples := []mse.SamplePage{
//		{HTML: page1HTML, Query: []string{"knee", "injury"}},
//		{HTML: page2HTML, Query: []string{"jazz", "guitar"}},
//		// ... typically five sample pages
//	}
//	w, err := mse.Train(samples, nil)
//	if err != nil { ... }
//	sections := w.Extract(newPageHTML, []string{"salt", "thirst"})
//	for _, s := range sections {
//		fmt.Println("section:", s.Heading)
//		for _, r := range s.Records {
//			fmt.Println("  record:", r.Lines[0])
//		}
//	}
//
// Wrappers serialize to JSON with Wrapper.MarshalJSON / LoadWrapper, so a
// metasearch engine or deep-web crawler can build them once and apply them
// cheaply afterwards.
package mse

import (
	"encoding/json"
	"fmt"

	"mse/internal/annotate"
	"mse/internal/core"
)

// SamplePage is one training page: its HTML source and the query terms
// that retrieved it (the terms are treated as dynamic content during
// boundary-marker discovery).
type SamplePage struct {
	HTML  string
	Query []string
}

// Section is one extracted dynamic section.  Records are in page order;
// Heading is the text of the section's left boundary marker ("News",
// "Sponsored Links", …) when one exists.
type Section = core.Section

// Record is one extracted search result record: its content-line texts
// and the link targets it contains.
type Record = core.Record

// Options tune the pipeline; the zero value is not valid — use
// DefaultOptions and modify fields.  All parameters default to the
// paper's values (W = 1.8, K = 0.127, equal feature weights).
type Options = core.Options

// DefaultOptions returns the paper's parameter settings.
func DefaultOptions() Options { return core.DefaultOptions() }

// Wrapper is a trained extraction wrapper for one search engine: an
// ordered list of section wrappers plus the section families derived from
// them.  A Wrapper is immutable after Train/LoadWrapper; Extract,
// Validate and MarshalJSON are safe for concurrent use.
type Wrapper struct {
	ew  *core.EngineWrapper
	opt Options
}

// Train runs the full MSE pipeline (Steps 1-9 of the paper) over the
// sample pages.  At least two sample pages are required; the paper uses
// five.  opt may be nil for defaults.
func Train(samples []SamplePage, opt *Options) (*Wrapper, error) {
	o := DefaultOptions()
	if opt != nil {
		o = *opt
	}
	in := make([]*core.SamplePage, len(samples))
	for i := range samples {
		in[i] = &core.SamplePage{HTML: samples[i].HTML, Query: samples[i].Query}
	}
	ew, err := core.BuildWrapper(in, o)
	if err != nil {
		return nil, err
	}
	return &Wrapper{ew: ew, opt: o}, nil
}

// Extract applies the wrapper to a new result page.  query lists the
// query terms used to retrieve the page and may be nil when unknown.
// Sections come back in page order with their records.
func (w *Wrapper) Extract(html string, query []string) []*Section {
	return w.ew.Extract(html, query)
}

// SectionCount returns the number of section schemas the wrapper extracts
// directly (members folded into families are not counted).
func (w *Wrapper) SectionCount() int { return len(w.ew.Wrappers) }

// FamilyCount returns the number of section families (each able to match
// arbitrarily many sibling sections, including hidden ones).
func (w *Wrapper) FamilyCount() int { return len(w.ew.Families) }

// MarshalJSON serializes the wrapper for storage.
func (w *Wrapper) MarshalJSON() ([]byte, error) {
	return json.Marshal(w.ew)
}

// LoadWrapper restores a wrapper serialized with MarshalJSON.  opt may be
// nil for defaults.
func LoadWrapper(data []byte, opt *Options) (*Wrapper, error) {
	o := DefaultOptions()
	if opt != nil {
		o = *opt
	}
	var ew core.EngineWrapper
	if err := json.Unmarshal(data, &ew); err != nil {
		return nil, fmt.Errorf("mse: loading wrapper: %w", err)
	}
	ew.SetOptions(o)
	return &Wrapper{ew: &ew, opt: o}, nil
}

// ValidationReport summarizes wrapper health over fresh pages; see
// core.ValidationReport.
type ValidationReport = core.ValidationReport

// Validate applies the wrapper to fresh result pages and reports, per
// section wrapper, how often it fired and how many records it extracted —
// the signal a metasearch operator watches to know when an engine's
// template has drifted and the wrapper needs retraining.
func (w *Wrapper) Validate(pages []SamplePage) *ValidationReport {
	in := make([]*core.SamplePage, len(pages))
	for i := range pages {
		in[i] = &core.SamplePage{HTML: pages[i].HTML, Query: pages[i].Query}
	}
	return w.ew.Validate(in)
}

// Unit is one annotated data unit of a record (title, snippet, display
// URL, price, date, rank, more-trailer); see internal/annotate.
type Unit = annotate.Unit

// UnitType classifies a data unit.
type UnitType = annotate.UnitType

// Exported unit types.
const (
	UnitTitle      = annotate.Title
	UnitSnippet    = annotate.Snippet
	UnitDisplayURL = annotate.DisplayURL
	UnitPrice      = annotate.Price
	UnitDate       = annotate.Date
	UnitRank       = annotate.Rank
	UnitMore       = annotate.More
)

// Annotate identifies the data units inside an extracted record — the
// third task of complete web data extraction (the paper's §1 framing:
// section extraction, record extraction, data annotation).
func Annotate(rec Record) []Unit {
	return annotate.Record(rec)
}

// TitleOf returns the record's title text, or "" when no title is found.
func TitleOf(rec Record) string {
	return annotate.TitleOf(rec)
}
