package mse_test

import (
	"fmt"

	"mse"
	"mse/internal/synth"
)

// Example demonstrates the full train-then-extract workflow on a synthetic
// search engine.  A real integration would fill SamplePage.HTML with pages
// fetched from a live engine.
func Example() {
	engine := synth.NewEngine(99, 1, true)

	var samples []mse.SamplePage
	for q := 0; q < 5; q++ {
		page := engine.Page(q)
		samples = append(samples, mse.SamplePage{HTML: page.HTML, Query: page.Query})
	}
	w, err := mse.Train(samples, nil)
	if err != nil {
		fmt.Println("train:", err)
		return
	}

	unseen := engine.Page(7)
	sections := w.Extract(unseen.HTML, unseen.Query)
	fmt.Printf("extracted %d sections\n", len(sections))
	for _, s := range sections {
		fmt.Printf("section %q with %d records\n", s.Heading, len(s.Records))
	}
	// Output:
	// extracted 3 sections
	// section "Images" with 2 records
	// section "Videos" with 3 records
	// section "Articles" with 2 records
}

// ExampleWrapper_Validate shows the wrapper-maintenance check a metasearch
// operator runs periodically: if a component engine redesigns its result
// pages, the report turns unhealthy and the wrapper gets retrained.
func ExampleWrapper_Validate() {
	engine := synth.NewEngine(99, 2, false)
	var samples []mse.SamplePage
	for q := 0; q < 5; q++ {
		page := engine.Page(q)
		samples = append(samples, mse.SamplePage{HTML: page.HTML, Query: page.Query})
	}
	w, err := mse.Train(samples, nil)
	if err != nil {
		fmt.Println("train:", err)
		return
	}

	fresh := []mse.SamplePage{}
	for q := 5; q < 10; q++ {
		page := engine.Page(q)
		fresh = append(fresh, mse.SamplePage{HTML: page.HTML, Query: page.Query})
	}
	report := w.Validate(fresh)
	fmt.Println("healthy:", report.Healthy(0.5))

	redesigned := []mse.SamplePage{
		{HTML: "<html><body><main>totally new layout</main></body></html>"},
		{HTML: "<html><body><main>another new page</main></body></html>"},
	}
	report = w.Validate(redesigned)
	fmt.Println("after redesign healthy:", report.Healthy(0.5))
	// Output:
	// healthy: true
	// after redesign healthy: false
}
