package mse

// Benchmark harness: one benchmark per table / figure / quantitative claim
// of the paper's evaluation (Section 6), as indexed in DESIGN.md.  The
// benchmarks print the regenerated rows once per run (on the first
// iteration) and measure the cost of the underlying computation, so
//
//	go test -bench=. -benchmem
//
// both regenerates the paper's results and reports throughput.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"mse/internal/baseline"
	"mse/internal/core"
	"mse/internal/editdist"
	"mse/internal/eval"
	"mse/internal/excache"
	"mse/internal/serve"
	"mse/internal/synth"
)

var benchBed = struct {
	once    sync.Once
	engines []*synth.Engine
}{}

func testbed() []*synth.Engine {
	benchBed.once.Do(func() {
		benchBed.engines = synth.GenerateTestbed(synth.DefaultConfig())
	})
	return benchBed.engines
}

func mseRun(engines []*synth.Engine, multiOnly bool, opt core.Options, sampleCount int) eval.Result {
	return eval.Run(engines, eval.RunConfig{
		SampleCount: sampleCount,
		PageCount:   10,
		MultiOnly:   multiOnly,
		NewExtractor: func() eval.Extractor {
			return eval.NewMSE(opt)
		},
	})
}

func printSection(b *testing.B, title string, res eval.Result) {
	b.Logf("%s\n%s", title, eval.Header())
	for _, row := range res.Rows() {
		b.Logf("%s", row.Format())
	}
}

// BenchmarkTable1SectionExtractionAll regenerates Table 1: section
// extraction recall/precision (perfect and total) over all 119 engines,
// 1190 pages, split into sample and test pages.
func BenchmarkTable1SectionExtractionAll(b *testing.B) {
	engines := testbed()
	var res eval.Result
	for i := 0; i < b.N; i++ {
		res = mseRun(engines, false, core.DefaultOptions(), 5)
	}
	printSection(b, "Table 1 (paper: perfect R/P 84.3/80.6, total R/P 97.6/93.2)", res)
}

// BenchmarkTable2SectionExtractionMulti regenerates Table 2: the same
// evaluation restricted to the 38 multi-section engines.
func BenchmarkTable2SectionExtractionMulti(b *testing.B) {
	engines := testbed()
	var res eval.Result
	for i := 0; i < b.N; i++ {
		res = mseRun(engines, true, core.DefaultOptions(), 5)
	}
	printSection(b, "Table 2 (paper: perfect R/P 81.0/78.5, total R/P 96.1/93.1)", res)
}

// BenchmarkTable3RecordExtraction regenerates Table 3: record-level recall
// and precision within perfectly and partially correctly extracted
// sections.
func BenchmarkTable3RecordExtraction(b *testing.B) {
	engines := testbed()
	var res eval.Result
	for i := 0; i < b.N; i++ {
		res = mseRun(engines, false, core.DefaultOptions(), 5)
	}
	b.Logf("Table 3 (paper: recall 98.7, precision 98.8)\n%s", eval.RecordHeader())
	for _, row := range res.Rows() {
		b.Logf("%s", row.RecordFormat())
	}
}

// BenchmarkWrapperConstruction measures wrapper construction from five
// sample pages of one engine — the paper reports 20-50 s on a 1.3 GHz
// Pentium M.
func BenchmarkWrapperConstruction(b *testing.B) {
	e := synth.NewEngine(2006, 3, true)
	var samples []SamplePage
	for q := 0; q < 5; q++ {
		gp := e.Page(q)
		samples = append(samples, SamplePage{HTML: gp.HTML, Query: gp.Query})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(samples, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWrapperApplication measures extraction from one new result page
// with a prebuilt wrapper — the paper reports "a small fraction of a
// second".
func BenchmarkWrapperApplication(b *testing.B) {
	e := synth.NewEngine(2006, 3, true)
	var samples []SamplePage
	for q := 0; q < 5; q++ {
		gp := e.Page(q)
		samples = append(samples, SamplePage{HTML: gp.HTML, Query: gp.Query})
	}
	w, err := Train(samples, nil)
	if err != nil {
		b.Fatal(err)
	}
	gp := e.Page(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Extract(gp.HTML, gp.Query)
	}
}

// BenchmarkTestbedStatistics regenerates the test-bed statistics quoted in
// §1-2: the multi-section engine fraction and boundary-marker coverage.
func BenchmarkTestbedStatistics(b *testing.B) {
	var multi, total, withLBM, sections int
	for i := 0; i < b.N; i++ {
		engines := synth.GenerateTestbed(synth.DefaultConfig())
		multi, total, withLBM, sections = 0, 0, 0, 0
		for _, e := range engines {
			total++
			if e.MultiSection() {
				multi++
			}
			for _, ss := range e.Schema.Sections {
				sections++
				if ss.HasLBM {
					withLBM++
				}
			}
		}
	}
	b.Logf("multi-section engines: %d/%d = %.1f%% (paper: 19%% of dataset 2; 38/119 overall)",
		multi, total, 100*float64(multi)/float64(total))
	b.Logf("sections with SBMs: %d/%d = %.1f%% (paper: 96.9%%)",
		withLBM, sections, 100*float64(withLBM)/float64(sections))
}

// BenchmarkAblationComponents quantifies what refinement (Step 4) and
// granularity resolution (Step 6) contribute, on the multi-section
// engines.
func BenchmarkAblationComponents(b *testing.B) {
	engines := testbed()
	variants := []struct {
		name string
		opt  core.Options
	}{
		{"full", core.DefaultOptions()},
		{"no-refine", func() core.Options { o := core.DefaultOptions(); o.DisableRefine = true; return o }()},
		{"no-granularity", func() core.Options { o := core.DefaultOptions(); o.DisableGranularity = true; return o }()},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var res eval.Result
			for i := 0; i < b.N; i++ {
				res = mseRun(engines, true, v.opt, 5)
			}
			tt := res.Total()
			b.Logf("%s: R-Tot %.1f%%  P-Tot %.1f%%", v.name,
				100*tt.RecallTotal(), 100*tt.PrecisionTotal())
		})
	}
}

// BenchmarkAblationSectionFamily isolates the section-family contribution
// (Step 9): evaluation restricted to pages holding a section that was
// hidden from the sample pages, with families on and off.
func BenchmarkAblationSectionFamily(b *testing.B) {
	engines := testbed()
	// Keep only engines that actually produce a hidden-section case.
	var hidden []*synth.Engine
	for _, e := range engines {
		seen := map[int]bool{}
		for q := 0; q < 5; q++ {
			for _, s := range e.Page(q).Truth.Sections {
				seen[s.SchemaIndex] = true
			}
		}
		for q := 5; q < 10; q++ {
			for _, s := range e.Page(q).Truth.Sections {
				if !seen[s.SchemaIndex] {
					hidden = append(hidden, e)
					q = 10
					break
				}
			}
		}
	}
	if len(hidden) == 0 {
		b.Skip("no hidden-section engines in the test bed")
	}
	variants := []struct {
		name string
		opt  core.Options
	}{
		{"families-on", core.DefaultOptions()},
		{"families-off", func() core.Options { o := core.DefaultOptions(); o.DisableFamilies = true; return o }()},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var res eval.Result
			for i := 0; i < b.N; i++ {
				res = mseRun(hidden, false, v.opt, 5)
			}
			tt := res.Total()
			b.Logf("%s over %d hidden-section engines: R-Tot %.1f%%  P-Tot %.1f%%",
				v.name, len(hidden), 100*tt.RecallTotal(), 100*tt.PrecisionTotal())
		})
	}
}

// BenchmarkAblationWParameter sweeps the W threshold of §5.3/§5.5 around
// the paper's 1.8.
func BenchmarkAblationWParameter(b *testing.B) {
	engines := testbed()
	for _, wv := range []float64{1.0, 1.4, 1.8, 2.2, 3.0} {
		wv := wv
		b.Run(fmt.Sprintf("W=%.1f", wv), func(b *testing.B) {
			opt := core.DefaultOptions()
			opt.Refine.W = wv
			opt.Granularity.W = wv
			var res eval.Result
			for i := 0; i < b.N; i++ {
				res = mseRun(engines, true, opt, 5)
			}
			tt := res.Total()
			b.Logf("W=%.1f: R-Tot %.1f%%  P-Tot %.1f%%", wv,
				100*tt.RecallTotal(), 100*tt.PrecisionTotal())
		})
	}
}

// BenchmarkAblationSampleCount varies the number of sample pages used for
// wrapper construction.
func BenchmarkAblationSampleCount(b *testing.B) {
	engines := testbed()
	for _, n := range []int{2, 3, 4, 5} {
		n := n
		b.Run(fmt.Sprintf("samples=%d", n), func(b *testing.B) {
			var res eval.Result
			for i := 0; i < b.N; i++ {
				res = mseRun(engines, false, core.DefaultOptions(), n)
			}
			tt := res.Total()
			b.Logf("%d samples: R-Tot %.1f%%  P-Tot %.1f%%", n,
				100*tt.RecallTotal(), 100*tt.PrecisionTotal())
		})
	}
}

// BenchmarkBaselineMDR compares MSE with the MDR-style and single-section
// baselines on the multi-section engines (the §7 discussion).
func BenchmarkBaselineMDR(b *testing.B) {
	engines := testbed()
	systems := []struct {
		name  string
		newEx func() eval.Extractor
	}{
		{"MSE", func() eval.Extractor { return eval.NewMSE(core.DefaultOptions()) }},
		{"MDR", func() eval.Extractor { return baseline.NewMDR() }},
		{"ViNTs-single", func() eval.Extractor { return baseline.NewSingleSection() }},
	}
	for _, sys := range systems {
		sys := sys
		b.Run(sys.name, func(b *testing.B) {
			var res eval.Result
			for i := 0; i < b.N; i++ {
				res = eval.Run(engines, eval.RunConfig{
					SampleCount: 5, PageCount: 10, MultiOnly: true, NewExtractor: sys.newEx,
				})
			}
			tt := res.Total()
			b.Logf("%s: R-Tot %.1f%%  P-Tot %.1f%%", sys.name,
				100*tt.RecallTotal(), 100*tt.PrecisionTotal())
		})
	}
}

// BenchmarkTreeDistMemoization is the ablation for this PR's tentpole: the
// full Table-1 evaluation over a slice of the test bed with the
// tree-distance memoization cache on (the default) versus off (the original
// fresh-dynamic-program-per-call path).  The ratio of the two is the cache's
// end-to-end speedup; the differential test pins their outputs equal.
func BenchmarkTreeDistMemoization(b *testing.B) {
	engines := testbed()[:24]
	was := editdist.CacheEnabled()
	defer editdist.SetCacheEnabled(was)
	for _, v := range []struct {
		name   string
		cached bool
	}{
		{"cached", true},
		{"uncached", false},
	} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			editdist.SetCacheEnabled(v.cached)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mseRun(engines, false, core.DefaultOptions(), 5)
			}
			if v.cached {
				s := editdist.Stats()
				b.Logf("cache: lookups=%d identical=%d hits=%d misses=%d early-exits=%d hit-rate=%.1f%%",
					s.Lookups, s.Identical, s.Hits, s.Misses, s.EarlyExits, 100*s.HitRate())
			}
		})
	}
}

// BenchmarkParallelismScaling measures wrapper construction at explicit
// worker counts; on a single-core host the 1/2/4 worker rows coincide, and
// the differential test guarantees the outputs do regardless.
func BenchmarkParallelismScaling(b *testing.B) {
	e := synth.NewEngine(2006, 3, true)
	var samples []*core.SamplePage
	for q := 0; q < 5; q++ {
		gp := e.Page(q)
		samples = append(samples, &core.SamplePage{HTML: gp.HTML, Query: gp.Query})
	}
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := core.DefaultOptions()
			opt.Parallelism = workers
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildWrapper(samples, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScaleWrapperConstruction measures wrapper construction across a
// spread of engine complexities, reporting per-engine cost at test-bed
// scale (119 engines trains in ~1 s on one modern core, versus the paper's
// 20-50 s for a single engine on 2006 hardware).
func BenchmarkScaleWrapperConstruction(b *testing.B) {
	engines := testbed()
	// Pre-generate the sample pages so the benchmark isolates training.
	type trainSet struct{ samples []SamplePage }
	sets := make([]trainSet, 0, len(engines))
	for _, e := range engines[:24] {
		var ts trainSet
		for q := 0; q < 5; q++ {
			gp := e.Page(q)
			ts.samples = append(ts.samples, SamplePage{HTML: gp.HTML, Query: gp.Query})
		}
		sets = append(sets, ts)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := sets[i%len(sets)]
		if _, err := Train(ts.samples, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtractHotPath measures one warm-wrapper extraction of a single
// page — the per-request cost of the serving fast path with pooled parse
// arenas, render scratches and apply scratches.  Run with -benchmem; the
// allocs/op figure is the PR's zero-allocation-fast-path scorecard.
func BenchmarkExtractHotPath(b *testing.B) {
	e := synth.NewEngine(2006, 5, true)
	var samples []SamplePage
	for q := 0; q < 5; q++ {
		gp := e.Page(q)
		samples = append(samples, SamplePage{HTML: gp.HTML, Query: gp.Query})
	}
	w, err := Train(samples, nil)
	if err != nil {
		b.Fatal(err)
	}
	gp := e.Page(7)
	b.SetBytes(int64(len(gp.HTML)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Extract(gp.HTML, gp.Query)
	}
}

// BenchmarkExtractHotPathParallel is the concurrent-throughput variant of
// BenchmarkExtractHotPath: GOMAXPROCS goroutines extracting at once, the
// shape of a loaded extraction service.  It exercises pool contention and
// cross-goroutine arena recycling.
func BenchmarkExtractHotPathParallel(b *testing.B) {
	e := synth.NewEngine(2006, 5, true)
	var samples []SamplePage
	for q := 0; q < 5; q++ {
		gp := e.Page(q)
		samples = append(samples, SamplePage{HTML: gp.HTML, Query: gp.Query})
	}
	w, err := Train(samples, nil)
	if err != nil {
		b.Fatal(err)
	}
	gp := e.Page(7)
	b.SetBytes(int64(len(gp.HTML)))
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			w.Extract(gp.HTML, gp.Query)
		}
	})
}

// BenchmarkExtractionThroughput measures steady-state extraction pages/sec
// with a warm wrapper — the serving-path cost of the metasearch and
// deep-crawl applications.
func BenchmarkExtractionThroughput(b *testing.B) {
	e := synth.NewEngine(2006, 5, true)
	var samples []SamplePage
	for q := 0; q < 5; q++ {
		gp := e.Page(q)
		samples = append(samples, SamplePage{HTML: gp.HTML, Query: gp.Query})
	}
	w, err := Train(samples, nil)
	if err != nil {
		b.Fatal(err)
	}
	var pages []*synth.GenPage
	for q := 5; q < 10; q++ {
		pages = append(pages, e.Page(q))
	}
	totalBytes := 0
	for _, gp := range pages {
		totalBytes += len(gp.HTML)
	}
	b.SetBytes(int64(totalBytes / len(pages)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gp := pages[i%len(pages)]
		w.Extract(gp.HTML, gp.Query)
	}
}

// benchServeRegistry builds a serving registry with one trained wrapper
// ("bench") over the BenchmarkExtractHotPath engine.  cacheBytes > 0
// installs the content-addressed result cache.
func benchServeRegistry(b *testing.B, cacheBytes int64) (*serve.Registry, *synth.Engine) {
	b.Helper()
	e := synth.NewEngine(2006, 5, true)
	var samples []*core.SamplePage
	for q := 0; q < 5; q++ {
		gp := e.Page(q)
		samples = append(samples, &core.SamplePage{HTML: gp.HTML, Query: gp.Query})
	}
	ew, err := core.BuildWrapper(samples, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	data, err := json.Marshal(ew)
	if err != nil {
		b.Fatal(err)
	}
	reg := serve.NewRegistry(core.DefaultOptions())
	if cacheBytes > 0 {
		reg.SetCache(cacheBytes)
	}
	if err := reg.Add("bench", data); err != nil {
		b.Fatal(err)
	}
	return reg, e
}

// BenchmarkExtractCachedHotPath measures the serving path with the
// content-addressed result cache at controlled hit rates.  hit=100 is the
// pure repeat-page cost (hash + shard lookup); hit=90 and hit=99 mix in
// misses by evicting one pool entry before extracting it, so a miss pays
// the full parse/prune/render/apply pipeline plus cache refill.  Compare
// against BenchmarkExtractHotPath — the PR 6 always-miss cost — for the
// cache speedup at each hit rate.
func BenchmarkExtractCachedHotPath(b *testing.B) {
	const poolSize = 10
	run := func(missEvery int) func(b *testing.B) {
		return func(b *testing.B) {
			reg, e := benchServeRegistry(b, 64<<20)
			ctx := context.Background()
			pages := make([]*synth.GenPage, poolSize)
			keys := make([]excache.Key, poolSize)
			total := 0
			for i := range pages {
				pages[i] = e.Page(5 + i)
				keys[i] = excache.Key{
					Engine: "bench", Gen: 1,
					Hash: excache.HashPage(pages[i].HTML, pages[i].Query),
				}
				total += len(pages[i].HTML)
				if _, _, err := reg.ExtractCached(ctx, "bench", pages[i].HTML, pages[i].Query); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(total / poolSize))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := i % poolSize
				if missEvery > 0 && i%missEvery == 0 {
					reg.Cache().Remove(keys[p])
				}
				if _, _, err := reg.ExtractCached(ctx, "bench", pages[p].HTML, pages[p].Query); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("hit=100", run(0))
	b.Run("hit=99", run(100))
	b.Run("hit=90", run(10))
}

// BenchmarkExtractCachedHotPathParallel is the loaded-service shape of the
// cached path: GOMAXPROCS goroutines on a shared registry, mostly hits,
// with periodic evictions so concurrent misses on the same key exercise
// the singleflight collapse (one extraction, the rest wait for its entry).
func BenchmarkExtractCachedHotPathParallel(b *testing.B) {
	reg, e := benchServeRegistry(b, 64<<20)
	ctx := context.Background()
	gp := e.Page(7)
	key := excache.Key{Engine: "bench", Gen: 1, Hash: excache.HashPage(gp.HTML, gp.Query)}
	if _, _, err := reg.ExtractCached(ctx, "bench", gp.HTML, gp.Query); err != nil {
		b.Fatal(err)
	}
	var ops atomic.Int64
	b.SetBytes(int64(len(gp.HTML)))
	b.ReportAllocs()
	// At least 8 goroutines even on a single-P machine, so evicted keys see
	// concurrent misses and the singleflight path actually runs.
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if ops.Add(1)%512 == 0 {
				reg.Cache().Remove(key)
			}
			if _, _, err := reg.ExtractCached(ctx, "bench", gp.HTML, gp.Query); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	s := reg.Cache().Stats()
	b.ReportMetric(float64(s.Collapsed), "collapsed")
}

// BenchmarkExtractBatch measures POST /extract/batch amortization over the
// single-request path, end to end through HTTP.  single16 issues 16
// sequential /extract requests per op; batch16 ships the same 16 distinct
// pages in one /extract/batch request (cache off — the win is transport
// and admission amortization); dedup16 ships 16 copies of one page, which
// the within-batch content-hash dedupe collapses into a single extraction;
// warm16 is batch16 against a warmed cache (pure hit assembly).  Compare
// ns/page across the variants.
func BenchmarkExtractBatch(b *testing.B) {
	const items = 16
	type batchItem struct {
		Engine string `json:"engine"`
		Q      string `json:"q"`
		HTML   string `json:"html"`
	}
	makeBody := func(pages []*synth.GenPage) []byte {
		its := make([]batchItem, 0, items)
		for i := 0; i < items; i++ {
			gp := pages[i%len(pages)]
			its = append(its, batchItem{Engine: "bench", Q: strings.Join(gp.Query, "+"), HTML: gp.HTML})
		}
		body, err := json.Marshal(map[string]any{"items": its})
		if err != nil {
			b.Fatal(err)
		}
		return body
	}
	post := func(b *testing.B, url string, body []byte) {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	distinct := func(e *synth.Engine) []*synth.GenPage {
		pages := make([]*synth.GenPage, items)
		for i := range pages {
			pages[i] = e.Page(5 + i)
		}
		return pages
	}
	perPage := func(b *testing.B) {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*items), "ns/page")
	}

	b.Run("single16", func(b *testing.B) {
		reg, e := benchServeRegistry(b, 0)
		srv := httptest.NewServer(reg.Handler())
		defer srv.Close()
		pages := distinct(e)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, gp := range pages {
				post(b, srv.URL+"/extract?engine=bench&q="+url.QueryEscape(strings.Join(gp.Query, "+")),
					[]byte(gp.HTML))
			}
		}
		perPage(b)
	})
	b.Run("batch16", func(b *testing.B) {
		reg, e := benchServeRegistry(b, 0)
		srv := httptest.NewServer(reg.Handler())
		defer srv.Close()
		body := makeBody(distinct(e))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, srv.URL+"/extract/batch", body)
		}
		perPage(b)
	})
	b.Run("dedup16", func(b *testing.B) {
		reg, e := benchServeRegistry(b, 0)
		srv := httptest.NewServer(reg.Handler())
		defer srv.Close()
		body := makeBody([]*synth.GenPage{e.Page(7)})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, srv.URL+"/extract/batch", body)
		}
		perPage(b)
	})
	b.Run("warm16", func(b *testing.B) {
		reg, e := benchServeRegistry(b, 64<<20)
		srv := httptest.NewServer(reg.Handler())
		defer srv.Close()
		body := makeBody(distinct(e))
		post(b, srv.URL+"/extract/batch", body) // warm the cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, srv.URL+"/extract/batch", body)
		}
		perPage(b)
	})
}
