package mse

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"mse/internal/core"
	"mse/internal/editdist"
	"mse/internal/synth"
)

// TestDifferentialCacheAndParallelism is the end-to-end soundness check for
// this PR's performance work: for every engine of a small synthetic test
// bed, the pipeline run with tree-distance memoization on and the
// data-parallel stages fanned out over four workers must produce
// byte-identical wrappers and byte-identical extractions to the serial,
// uncached reference path.  Any fingerprint collision, cache corruption or
// scheduling-dependent arithmetic shows up as a diff here.
func TestDifferentialCacheAndParallelism(t *testing.T) {
	wasEnabled := editdist.CacheEnabled()
	defer editdist.SetCacheEnabled(wasEnabled)

	bed := synth.GenerateTestbed(synth.Config{Seed: 2006, Engines: 8, MultiSection: 4, Queries: 10})
	for ei, e := range bed {
		var samples []*core.SamplePage
		for q := 0; q < 5; q++ {
			gp := e.Page(q)
			samples = append(samples, &core.SamplePage{HTML: gp.HTML, Query: gp.Query})
		}
		run := func(cached bool, workers int) (wrapperJSON []byte, extractions [][]byte) {
			editdist.SetCacheEnabled(cached)
			opt := core.DefaultOptions()
			opt.Parallelism = workers
			ew, err := core.BuildWrapper(samples, opt)
			if err != nil {
				t.Fatalf("engine %d (cached=%v workers=%d): %v", ei, cached, workers, err)
			}
			wj, err := json.Marshal(ew)
			if err != nil {
				t.Fatalf("engine %d: marshal wrapper: %v", ei, err)
			}
			for q := 5; q < 10; q++ {
				gp := e.Page(q)
				sj, err := json.Marshal(ew.Extract(gp.HTML, gp.Query))
				if err != nil {
					t.Fatalf("engine %d page %d: marshal sections: %v", ei, q, err)
				}
				extractions = append(extractions, sj)
			}
			return wj, extractions
		}

		refWrapper, refPages := run(false, 1) // serial, uncached reference
		for _, variant := range []struct {
			name    string
			cached  bool
			workers int
		}{
			{"cached-serial", true, 1},
			{"cached-parallel", true, 4},
		} {
			gotWrapper, gotPages := run(variant.cached, variant.workers)
			if !bytes.Equal(gotWrapper, refWrapper) {
				t.Errorf("engine %d: %s wrapper differs from reference\nref: %s\ngot: %s",
					ei, variant.name, truncate(refWrapper), truncate(gotWrapper))
			}
			for pi := range refPages {
				if !bytes.Equal(gotPages[pi], refPages[pi]) {
					t.Errorf("engine %d page %d: %s extraction differs from reference\nref: %s\ngot: %s",
						ei, pi, variant.name, truncate(refPages[pi]), truncate(gotPages[pi]))
				}
			}
		}
	}
}

// TestDifferentialCacheHitRepeatability re-runs one engine's pipeline with a
// warm cache: answers served from resident entries must reproduce the
// first (cache-filling) run exactly.
func TestDifferentialCacheHitRepeatability(t *testing.T) {
	wasEnabled := editdist.CacheEnabled()
	defer editdist.SetCacheEnabled(wasEnabled)
	editdist.SetCacheEnabled(true)
	editdist.ResetCache()

	e := synth.NewEngine(2006, 1, true)
	var samples []*core.SamplePage
	for q := 0; q < 5; q++ {
		gp := e.Page(q)
		samples = append(samples, &core.SamplePage{HTML: gp.HTML, Query: gp.Query})
	}
	var first []byte
	for i := 0; i < 3; i++ {
		ew, err := core.BuildWrapper(samples, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		wj, err := json.Marshal(ew)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = wj
		} else if !bytes.Equal(wj, first) {
			t.Fatalf("run %d differs from the cache-filling run", i)
		}
	}
	if s := editdist.Stats(); s.Hits+s.Identical == 0 {
		t.Fatalf("warm runs never hit the cache: %+v", s)
	}
}

func truncate(b []byte) string {
	const max = 400
	if len(b) <= max {
		return string(b)
	}
	return fmt.Sprintf("%s... (%d bytes)", b[:max], len(b))
}
