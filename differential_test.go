package mse

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"mse/internal/core"
	"mse/internal/dom"
	"mse/internal/editdist"
	"mse/internal/synth"
	"mse/internal/wrapper"
)

// TestDifferentialCacheAndParallelism is the end-to-end soundness check for
// this PR's performance work: for every engine of a small synthetic test
// bed, the pipeline run with tree-distance memoization on and the
// data-parallel stages fanned out over four workers must produce
// byte-identical wrappers and byte-identical extractions to the serial,
// uncached reference path.  Any fingerprint collision, cache corruption or
// scheduling-dependent arithmetic shows up as a diff here.
func TestDifferentialCacheAndParallelism(t *testing.T) {
	wasEnabled := editdist.CacheEnabled()
	defer editdist.SetCacheEnabled(wasEnabled)

	bed := synth.GenerateTestbed(synth.Config{Seed: 2006, Engines: 8, MultiSection: 4, Queries: 10})
	for ei, e := range bed {
		var samples []*core.SamplePage
		for q := 0; q < 5; q++ {
			gp := e.Page(q)
			samples = append(samples, &core.SamplePage{HTML: gp.HTML, Query: gp.Query})
		}
		run := func(cached bool, workers int) (wrapperJSON []byte, extractions [][]byte) {
			editdist.SetCacheEnabled(cached)
			opt := core.DefaultOptions()
			opt.Parallelism = workers
			ew, err := core.BuildWrapper(samples, opt)
			if err != nil {
				t.Fatalf("engine %d (cached=%v workers=%d): %v", ei, cached, workers, err)
			}
			wj, err := json.Marshal(ew)
			if err != nil {
				t.Fatalf("engine %d: marshal wrapper: %v", ei, err)
			}
			for q := 5; q < 10; q++ {
				gp := e.Page(q)
				sj, err := json.Marshal(ew.Extract(gp.HTML, gp.Query))
				if err != nil {
					t.Fatalf("engine %d page %d: marshal sections: %v", ei, q, err)
				}
				extractions = append(extractions, sj)
			}
			return wj, extractions
		}

		refWrapper, refPages := run(false, 1) // serial, uncached reference
		for _, variant := range []struct {
			name    string
			cached  bool
			workers int
		}{
			{"cached-serial", true, 1},
			{"cached-parallel", true, 4},
		} {
			gotWrapper, gotPages := run(variant.cached, variant.workers)
			if !bytes.Equal(gotWrapper, refWrapper) {
				t.Errorf("engine %d: %s wrapper differs from reference\nref: %s\ngot: %s",
					ei, variant.name, truncate(refWrapper), truncate(gotWrapper))
			}
			for pi := range refPages {
				if !bytes.Equal(gotPages[pi], refPages[pi]) {
					t.Errorf("engine %d page %d: %s extraction differs from reference\nref: %s\ngot: %s",
						ei, pi, variant.name, truncate(refPages[pi]), truncate(gotPages[pi]))
				}
			}
		}
	}
}

// TestDifferentialCacheHitRepeatability re-runs one engine's pipeline with a
// warm cache: answers served from resident entries must reproduce the
// first (cache-filling) run exactly.
func TestDifferentialCacheHitRepeatability(t *testing.T) {
	wasEnabled := editdist.CacheEnabled()
	defer editdist.SetCacheEnabled(wasEnabled)
	editdist.SetCacheEnabled(true)
	editdist.ResetCache()

	e := synth.NewEngine(2006, 1, true)
	var samples []*core.SamplePage
	for q := 0; q < 5; q++ {
		gp := e.Page(q)
		samples = append(samples, &core.SamplePage{HTML: gp.HTML, Query: gp.Query})
	}
	var first []byte
	for i := 0; i < 3; i++ {
		ew, err := core.BuildWrapper(samples, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		wj, err := json.Marshal(ew)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = wj
		} else if !bytes.Equal(wj, first) {
			t.Fatalf("run %d differs from the cache-filling run", i)
		}
	}
	if s := editdist.Stats(); s.Hits+s.Identical == 0 {
		t.Fatalf("warm runs never hit the cache: %+v", s)
	}
}

func truncate(b []byte) string {
	const max = 400
	if len(b) <= max {
		return string(b)
	}
	return fmt.Sprintf("%s... (%d bytes)", b[:max], len(b))
}

// TestDifferentialArenas is the soundness check for the zero-allocation
// fast path: for every engine of a small synthetic test bed, the pipeline
// run with pooled parse arenas, render scratches and apply scratches (the
// default) must produce byte-identical wrappers and extractions to the
// plain-allocator path restored by dom.SetArenasEnabled(false).  Interning
// bugs, arena aliasing, stale pooled state or a divergence in the
// byte-oriented text normalization all show up as a diff here.
func TestDifferentialArenas(t *testing.T) {
	was := dom.ArenasEnabled()
	defer dom.SetArenasEnabled(was)

	bed := synth.GenerateTestbed(synth.Config{Seed: 2006, Engines: 8, MultiSection: 4, Queries: 10})
	for ei, e := range bed {
		var samples []*core.SamplePage
		for q := 0; q < 5; q++ {
			gp := e.Page(q)
			samples = append(samples, &core.SamplePage{HTML: gp.HTML, Query: gp.Query})
		}
		run := func(arenas bool) (wrapperJSON []byte, extractions [][]byte) {
			dom.SetArenasEnabled(arenas)
			ew, err := core.BuildWrapper(samples, core.DefaultOptions())
			if err != nil {
				t.Fatalf("engine %d (arenas=%v): %v", ei, arenas, err)
			}
			wj, err := json.Marshal(ew)
			if err != nil {
				t.Fatalf("engine %d: marshal wrapper: %v", ei, err)
			}
			for q := 5; q < 10; q++ {
				gp := e.Page(q)
				sj, err := json.Marshal(ew.Extract(gp.HTML, gp.Query))
				if err != nil {
					t.Fatalf("engine %d page %d: marshal sections: %v", ei, q, err)
				}
				extractions = append(extractions, sj)
			}
			return wj, extractions
		}

		refWrapper, refPages := run(false) // plain-allocator reference
		// Two pooled runs back to back: the second reuses arenas and
		// scratches recycled by the first, so stale pooled state cannot
		// hide behind a cold pool.
		for round := 0; round < 2; round++ {
			gotWrapper, gotPages := run(true)
			if !bytes.Equal(gotWrapper, refWrapper) {
				t.Errorf("engine %d round %d: pooled wrapper differs from reference\nref: %s\ngot: %s",
					ei, round, truncate(refWrapper), truncate(gotWrapper))
			}
			for pi := range refPages {
				if !bytes.Equal(gotPages[pi], refPages[pi]) {
					t.Errorf("engine %d page %d round %d: pooled extraction differs from reference\nref: %s\ngot: %s",
						ei, pi, round, truncate(refPages[pi]), truncate(gotPages[pi]))
				}
			}
		}
	}
}

// TestDifferentialLeasedExtraction checks the serving-path lease contract:
// sections returned by ExtractLeased must compare byte-identical before
// and after the lease is released, and repeated leased extractions of the
// same page through the recycled pools must reproduce each other exactly.
func TestDifferentialLeasedExtraction(t *testing.T) {
	e := synth.NewEngine(2006, 3, true)
	var samples []*core.SamplePage
	for q := 0; q < 5; q++ {
		gp := e.Page(q)
		samples = append(samples, &core.SamplePage{HTML: gp.HTML, Query: gp.Query})
	}
	ew, err := core.BuildWrapper(samples, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	gp := e.Page(7)
	var first []byte
	for i := 0; i < 5; i++ {
		sections, lease := ew.ExtractLeased(gp.HTML, gp.Query)
		before, err := json.Marshal(sections)
		if err != nil {
			t.Fatal(err)
		}
		lease.Release()
		lease.Release() // idempotent
		after, err := json.Marshal(sections)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(before, after) {
			t.Fatalf("iteration %d: sections changed after lease release\nbefore: %s\nafter:  %s",
				i, truncate(before), truncate(after))
		}
		if first == nil {
			first = before
		} else if !bytes.Equal(before, first) {
			t.Fatalf("iteration %d differs from the first leased extraction", i)
		}
	}
}

// TestDifferentialCompiledWrappers is the soundness check for the compiled
// extraction fast path (wrapper compilation + query-aware DOM pruning):
// across the full paper-scale synthetic testbed — 119 engines, 38
// multi-section — every extraction through the compiled path (prune pass,
// pruned render with skeleton lines and early stop, interned-signature
// partitioning, precompiled boundary markers) must be byte-identical to
// the interpreted legacy path restored by wrapper.SetCompiledEnabled(false).
// Drifted variants of every engine run too, so the fallback machinery
// (signature descend, tag-level classification, cohesion mining on
// skeleton-free ranges) is differential-tested, not just the happy path.
// Compilation must also leave the wrapper's serialized form untouched.
func TestDifferentialCompiledWrappers(t *testing.T) {
	was := wrapper.CompiledEnabled()
	defer wrapper.SetCompiledEnabled(was)

	bed := synth.GenerateTestbed(synth.DefaultConfig())
	if testing.Short() {
		bed = bed[:12]
	}
	for ei, e := range bed {
		var samples []*core.SamplePage
		for q := 0; q < 5; q++ {
			gp := e.Page(q)
			samples = append(samples, &core.SamplePage{HTML: gp.HTML, Query: gp.Query})
		}
		ew, err := core.BuildWrapper(samples, core.DefaultOptions())
		if err != nil {
			t.Fatalf("engine %d: %v", ei, err)
		}
		wjBefore, err := json.Marshal(ew)
		if err != nil {
			t.Fatalf("engine %d: marshal wrapper: %v", ei, err)
		}
		drifted := e.Drifted()
		extractBoth := func(html string, query []string, what string, q int) {
			wrapper.SetCompiledEnabled(false)
			ref, err := json.Marshal(ew.Extract(html, query))
			if err != nil {
				t.Fatalf("engine %d %s page %d: marshal ref: %v", ei, what, q, err)
			}
			wrapper.SetCompiledEnabled(true)
			got, err := json.Marshal(ew.Extract(html, query))
			if err != nil {
				t.Fatalf("engine %d %s page %d: marshal compiled: %v", ei, what, q, err)
			}
			if !bytes.Equal(got, ref) {
				t.Errorf("engine %d %s page %d: compiled extraction differs\nref: %s\ngot: %s",
					ei, what, q, truncate(ref), truncate(got))
			}
		}
		for q := 5; q < 10; q++ {
			gp := e.Page(q)
			extractBoth(gp.HTML, gp.Query, "fresh", q)
			dp := drifted.Page(q)
			extractBoth(dp.HTML, dp.Query, "drifted", q)
		}
		wjAfter, err := json.Marshal(ew)
		if err != nil {
			t.Fatalf("engine %d: re-marshal wrapper: %v", ei, err)
		}
		if !bytes.Equal(wjBefore, wjAfter) {
			t.Errorf("engine %d: compilation changed the wrapper's serialized form", ei)
		}
	}
}
